(* Integration tests of the Totem SRP engine over the simulated network
   (unreplicated configuration, so only SRP mechanics are in play). *)

open Util

let start t =
  Cluster.start t.cluster;
  t

let test_total_order_basic () =
  let t = start (make ~style:Style.No_replication ()) in
  submit_n t ~node:1 ~size:500 10;
  submit_n t ~node:2 ~size:500 10;
  run_ms t 500;
  check_delivered_everything t ~expected:20

let test_sender_order_preserved () =
  let t = start (make ~style:Style.No_replication ()) in
  submit_n t ~node:1 ~size:300 20;
  run_ms t 500;
  let seqs = List.filter_map (fun (o, s) -> if o = 1 then Some s else None) (order t 0) in
  Alcotest.(check (list int)) "FIFO per sender" (List.init 20 (fun i -> i + 1)) seqs

let test_self_delivery () =
  let t = start (make ~style:Style.No_replication ()) in
  submit_n t ~node:0 ~size:100 5;
  run_ms t 500;
  let mine = List.filter (fun (o, _) -> o = 0) (order t 0) in
  Alcotest.(check int) "sender delivers own messages" 5 (List.length mine)

let test_large_message_fragmentation () =
  let t = start (make ~style:Style.No_replication ()) in
  (* 40 KB: 29 fragments. *)
  submit t ~node:1 ~size:40_000;
  submit t ~node:2 ~size:100;
  run_ms t 500;
  check_delivered_everything t ~expected:2;
  let stats = Srp.stats (srp_of t 1) in
  Alcotest.(check bool) "multiple packets sent" true (stats.Srp.sent_packets > 20)

let test_retransmission_repairs_loss () =
  let t = start (make ~style:Style.No_replication ~num_nets:1 ()) in
  Cluster.set_network_loss t.cluster 0 0.05;
  submit_n t ~node:1 ~size:800 100;
  submit_n t ~node:3 ~size:800 100;
  run_ms t 3000;
  check_delivered_everything t ~expected:200;
  (* Loss must actually have caused retransmissions for this test to
     mean anything. *)
  let total_retrans =
    List.fold_left
      (fun acc node -> acc + (Srp.stats (srp_of t node)).Srp.retransmissions_served)
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "retransmissions happened" true (total_retrans > 0)

let test_heavy_loss_still_delivers () =
  let t = start (make ~style:Style.No_replication ~num_nets:1 ~seed:7 ()) in
  Cluster.set_network_loss t.cluster 0 0.25;
  submit_n t ~node:1 ~size:500 50;
  run_ms t 5000;
  check_delivered_everything t ~expected:50

let test_token_loss_recovers () =
  let t = start (make ~style:Style.No_replication ()) in
  submit_n t ~node:1 ~size:500 5;
  run_ms t 300;
  (* Deterministically drop every frame for 50 ms: the token in flight
     dies; token retransmission must revive the ring without a
     membership change. *)
  Cluster.fail_network t.cluster 0;
  run_ms t 50;
  Cluster.heal_network t.cluster 0;
  submit_n t ~node:2 ~size:500 5;
  run_ms t 1000;
  check_delivered_everything t ~expected:10;
  (* Only the initial installation — the outage did not reconfigure. *)
  Alcotest.(check int) "no ring change" 1
    (Srp.stats (srp_of t 0)).Srp.ring_changes;
  let retransmits =
    List.fold_left
      (fun acc n -> acc + (Srp.stats (srp_of t n)).Srp.token_retransmits)
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "token retransmission revived the ring" true
    (retransmits > 0)

let test_duplicate_tokens_ignored () =
  let t = start (make ~style:Style.No_replication ()) in
  run_ms t 300;
  (* Drop the network briefly so several nodes retransmit their last
     token; after healing, the late copies must all be discarded by the
     (ring, hops) duplicate filter — one ring, one token. *)
  Cluster.fail_network t.cluster 0;
  run_ms t 45;
  Cluster.heal_network t.cluster 0;
  run_ms t 1000;
  let stats = Srp.stats (srp_of t 0) in
  Alcotest.(check int) "still the initial ring" 1 stats.Srp.ring_changes;
  Alcotest.(check bool) "ring rotating normally" true
    (stats.Srp.token_visits > 500)

let test_idle_ring_stays_quiet () =
  let t = start (make ~style:Style.No_replication ()) in
  run_ms t 5000;
  Alcotest.(check int) "nothing delivered" 0 (List.length (order t 0));
  Alcotest.(check bool) "token kept rotating" true
    ((Srp.stats (srp_of t 0)).Srp.token_visits > 100)

let test_flow_control_bounds_inflight () =
  let t = start (make ~style:Style.No_replication ()) in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 1000;
  let stats = Srp.stats (srp_of t 0) in
  Alcotest.(check bool) "high throughput" true (stats.Srp.delivered_messages > 5000)

let test_supplier_saturation () =
  let t = start (make ~style:Style.No_replication ()) in
  Workload.saturate_nodes t.cluster ~nodes:[ 0 ] ~size:1024;
  run_ms t 1000;
  let st = Srp.stats (srp_of t 0) in
  Alcotest.(check bool) "node 0 sent a lot" true (st.Srp.sent_messages > 3000);
  Alcotest.(check int) "others sent nothing" 0
    (Srp.stats (srp_of t 1)).Srp.sent_messages

let test_crash_silences_node () =
  let t = start (make ~style:Style.No_replication ()) in
  Cluster.crash_node t.cluster 2;
  submit_n t ~node:2 ~size:100 5;
  run_ms t 2000;
  Alcotest.(check int) "crashed node's messages not delivered" 0
    (List.length (order t 0));
  (* The survivors reformed without node 2. *)
  Alcotest.(check bool) "new ring excludes node 2" true
    (Array.for_all (fun n -> n <> 2) (Srp.members (srp_of t 0)))

let test_cold_start_forms_ring () =
  let t = make ~style:Style.No_replication () in
  Cluster.start_cold t.cluster;
  run_ms t 2000;
  let srp0 = srp_of t 0 in
  Alcotest.(check bool) "operational" true (Srp.is_operational srp0);
  Alcotest.(check int) "all four joined" 4 (Array.length (Srp.members srp0));
  (* And the ring actually carries traffic. *)
  submit_n t ~node:1 ~size:200 5;
  run_ms t 1000;
  check_delivered_everything t ~expected:5

let test_rejoin_after_partition () =
  let t = start (make ~style:Style.No_replication ~num_nets:1 ()) in
  (* Isolate node 3 on the only network: the survivors reform; node 3
     gathers alone. *)
  Cluster.block_recv t.cluster ~node:3 ~net:0;
  Cluster.block_send t.cluster ~node:3 ~net:0;
  run_ms t 2000;
  Alcotest.(check int) "survivors reformed without node 3" 3
    (Array.length (Srp.members (srp_of t 0)));
  (* Heal: node 3 must be re-admitted. *)
  Cluster.heal_network t.cluster 0;
  run_ms t 3000;
  Alcotest.(check int) "node 3 back" 4 (Array.length (Srp.members (srp_of t 0)));
  Alcotest.(check bool) "node 3 operational on same ring" true
    (Srp.current_ring_id (srp_of t 3) = Srp.current_ring_id (srp_of t 0));
  submit_n t ~node:3 ~size:100 3;
  run_ms t 1000;
  Alcotest.(check bool) "traffic from node 3 flows" true
    (List.exists (fun (o, _) -> o = 3) (order t 0))

let test_mixed_sizes_order () =
  let t = start (make ~style:Style.No_replication ~seed:3 ()) in
  Workload.saturate_mixed t.cluster ~sizes:[| 64; 700; 1424; 5000 |];
  run_ms t 500;
  check_same_total_order t;
  Alcotest.(check bool) "delivered plenty" true (List.length (order t 0) > 500)

let tests =
  [
    Alcotest.test_case "total order, two senders" `Quick test_total_order_basic;
    Alcotest.test_case "per-sender FIFO" `Quick test_sender_order_preserved;
    Alcotest.test_case "self delivery" `Quick test_self_delivery;
    Alcotest.test_case "fragmentation of large messages" `Quick
      test_large_message_fragmentation;
    Alcotest.test_case "retransmission repairs loss" `Quick
      test_retransmission_repairs_loss;
    Alcotest.test_case "25% loss still delivers" `Slow test_heavy_loss_still_delivers;
    Alcotest.test_case "token loss recovers via retransmit" `Quick
      test_token_loss_recovers;
    Alcotest.test_case "duplicate tokens ignored" `Quick test_duplicate_tokens_ignored;
    Alcotest.test_case "idle ring stays quiet" `Quick test_idle_ring_stays_quiet;
    Alcotest.test_case "saturation throughput" `Quick test_flow_control_bounds_inflight;
    Alcotest.test_case "supplier saturates one node" `Quick test_supplier_saturation;
    Alcotest.test_case "node crash reconfigures" `Quick test_crash_silences_node;
    Alcotest.test_case "cold start forms a ring" `Quick test_cold_start_forms_ring;
    Alcotest.test_case "isolate and rejoin" `Slow test_rejoin_after_partition;
    Alcotest.test_case "mixed sizes keep total order" `Quick test_mixed_sizes_order;
  ]
