(* Randomised fault-injection: for many seeds, build a random cluster,
   hit it with a random sequence of network faults (always leaving the
   last network untouched, per the paper's operating assumption that one
   network survives), drive random traffic, then heal and quiesce.

   Invariants asserted for every run:
     - every submitted message is delivered at every node,
     - all nodes delivered the identical total order,
     - the network faults caused no membership change,
     - the never-faulted network was never marked faulty. *)

open Util
module Rng = Totem_engine.Rng
module Rrp = Totem_rrp.Rrp

let styles_for num_nets =
  if num_nets >= 3 then
    [| Style.Passive; Style.Active; Style.Active_passive 2 |]
  else [| Style.Passive; Style.Active |]

let random_action rng ~num_nets ~num_nodes =
  (* Only networks 0 .. num_nets-2 are ever faulted. *)
  let net = Rng.int rng (num_nets - 1) in
  let node = Rng.int rng num_nodes in
  match Rng.int rng 6 with
  | 0 -> Totem_cluster.Scenario.Fail_network net
  | 1 -> Totem_cluster.Scenario.Heal_network net
  | 2 -> Totem_cluster.Scenario.Set_loss (net, Rng.float rng 0.4)
  | 3 -> Totem_cluster.Scenario.Block_send (node, net)
  | 4 -> Totem_cluster.Scenario.Block_recv (node, net)
  | 5 ->
    let other = (node + 1 + Rng.int rng (num_nodes - 1)) mod num_nodes in
    Totem_cluster.Scenario.Partition
      { net; from_nodes = [ node ]; to_nodes = [ other ] }
  | _ -> assert false

let run_one ~seed =
  let rng = Rng.create ~seed in
  let num_nodes = 2 + Rng.int rng 4 in
  let num_nets = 2 + Rng.int rng 2 in
  let style = Rng.pick rng (styles_for num_nets) in
  let t = make ~num_nodes ~num_nets ~style ~seed () in
  Cluster.start t.cluster;
  (* Random fault timeline over the first 2 simulated seconds. *)
  let events =
    List.init
      (3 + Rng.int rng 6)
      (fun _ ->
        ( Vtime.ms (100 + Rng.int rng 1900),
          random_action rng ~num_nets ~num_nodes ))
  in
  Scenario.schedule t.cluster events;
  (* Random traffic: several bursts from random nodes. *)
  let submitted = ref 0 in
  for _ = 1 to 5 + Rng.int rng 10 do
    let node = Rng.int rng num_nodes in
    let count = 5 + Rng.int rng 30 in
    let size = 64 + Rng.int rng 2000 in
    let at = Vtime.ms (Rng.int rng 2000) in
    Totem_cluster.Workload.burst t.cluster ~node ~size ~count ~at;
    submitted := !submitted + count
  done;
  run_ms t 2200;
  (* Heal everything and let the system quiesce. *)
  for net = 0 to num_nets - 1 do
    Cluster.heal_network t.cluster net
  done;
  run_ms t 5000;
  let ctx =
    Printf.sprintf "seed=%d nodes=%d nets=%d style=%s" seed num_nodes num_nets
      (match style with
      | Style.Passive -> "passive"
      | Style.Active -> "active"
      | Style.Active_passive k -> Printf.sprintf "ap%d" k
      | Style.No_replication -> "none")
  in
  (* All delivered, identically, everywhere. *)
  let reference = order t 0 in
  if List.length reference <> !submitted then
    Alcotest.failf "%s: delivered %d of %d" ctx (List.length reference) !submitted;
  for node = 1 to num_nodes - 1 do
    if order t node <> reference then Alcotest.failf "%s: order diverged at node %d" ctx node
  done;
  (* Network faults never caused reconfiguration. *)
  for node = 0 to num_nodes - 1 do
    let changes = (Srp.stats (srp_of t node)).Srp.ring_changes in
    if changes <> 1 then
      Alcotest.failf "%s: node %d saw %d ring changes" ctx node changes;
    (* The untouched network was never condemned. *)
    if (Totem_rrp.Rrp.faulty (rrp_of t node)).(num_nets - 1) then
      Alcotest.failf "%s: node %d marked the healthy network" ctx node
  done

let test_fuzz_seeds () =
  for seed = 1 to 12 do
    run_one ~seed
  done

let tests = [ Alcotest.test_case "12 random fault timelines" `Slow test_fuzz_seeds ]
