(* The interleaving scenarios of Figs. 1 and 3, exercised by injecting
   frames directly into a replication layer (no ring behind it, so each
   arrival order can be staged exactly).

   Fig. 1: with two networks and per-network FIFO, the four copies of
   two consecutive units can arrive in any of six interleavings; none
   may trigger a retransmission or deliver a token early.

   Fig. 3: with passive replication a token can overtake a message sent
   before it (scenario 1) or a message can overtake an earlier message
   (scenario 2); the token buffer absorbs both. *)

module Sim = Totem_engine.Sim
module Vtime = Totem_engine.Vtime
module Timer = Totem_engine.Timer
module Fabric = Totem_net.Fabric
module Rrp = Totem_rrp.Rrp
module Style = Totem_rrp.Style
module Wire = Totem_srp.Wire
module Token = Totem_srp.Token
module Message = Totem_srp.Message
module Const = Totem_srp.Const

type harness = {
  sim : Sim.t;
  rrp : Rrp.t;
  mutable data_up : int list;  (* seqs, oldest first *)
  mutable tokens_up : int list;  (* hops, oldest first *)
  aru : int ref;
}

let const = Const.default

let make_harness style =
  let sim = Sim.create () in
  let num_nets = match style with Style.Active_passive _ -> 3 | _ -> 2 in
  let fabric = Fabric.create sim ~num_nodes:2 ~num_nets () in
  let rrp =
    Rrp.create sim ~fabric ~node:0 ~const ~config:Totem_rrp.Rrp_config.default
      ~style ()
  in
  let h = { sim; rrp; data_up = []; tokens_up = []; aru = ref 0 } in
  Rrp.connect rrp
    ~deliver_data:(fun p -> h.data_up <- h.data_up @ [ p.Wire.seq ])
    ~deliver_token:(fun tok -> h.tokens_up <- h.tokens_up @ [ tok.Token.hops ])
    ~deliver_join:(fun _ -> ())
    ~deliver_probe:(fun _ -> ())
    ~deliver_commit:(fun _ -> ())
    ~my_aru:(fun () -> !(h.aru))
    ~my_ring_id:(fun () -> 1)
    ~on_fault_report:(fun _ -> ());
  h

let packet ~seq =
  {
    Wire.ring_id = 1;
    seq;
    sender = 1;
    elements =
      [ { Wire.message = Message.make ~origin:1 ~app_seq:seq ~size:64 (); fragment = None } ];
  }

let token ~hops =
  { (Token.initial ~ring:[| 0; 1 |] ~ring_id:1) with Token.hops; seq = hops }

let inject_data h ~net ~seq =
  Rrp.frame_received h.rrp ~net (Wire.data_frame const ~src:1 (packet ~seq))

let inject_token h ~net ~hops =
  Rrp.frame_received h.rrp ~net (Wire.token_frame const ~src:1 (token ~hops))

(* All six interleavings of the copies of units u1 and u2 over networks
   x=0 and y=1, respecting per-network FIFO (Fig. 1). *)
let fig1_interleavings =
  [
    (* (unit, net) in arrival order; u1 before u2 on each net. *)
    [ (1, 0); (1, 1); (2, 0); (2, 1) ];
    [ (1, 0); (1, 1); (2, 1); (2, 0) ];
    [ (1, 0); (2, 0); (1, 1); (2, 1) ];
    [ (1, 1); (1, 0); (2, 0); (2, 1) ];
    [ (1, 1); (1, 0); (2, 1); (2, 0) ];
    [ (1, 1); (2, 1); (1, 0); (2, 0) ];
  ]

(* Messages under active replication: every scenario results in both
   arrivals being handed up (the SRP's filter destroys the duplicate,
   A1) and never disturbs the token machinery. *)
let test_fig1_messages_active () =
  List.iteri
    (fun i order ->
      let h = make_harness Style.Active in
      List.iter (fun (u, net) -> inject_data h ~net ~seq:u) order;
      Sim.run_until h.sim (Vtime.ms 1);
      let count u = List.length (List.filter (( = ) u) h.data_up) in
      Alcotest.(check int) (Printf.sprintf "scenario %d: u1 copies up" (i + 1)) 2 (count 1);
      Alcotest.(check int) (Printf.sprintf "scenario %d: u2 copies up" (i + 1)) 2 (count 2))
    fig1_interleavings

(* Tokens under active replication: a token is passed up exactly when
   its last copy arrives, so every interleaving where a token's copies
   are split around other traffic still delivers it exactly once and
   only after both copies (A2/A3). *)
let test_fig1_tokens_active () =
  (* Only interleavings 1, 2 and 4 can occur for two *tokens* on a real
     ring (t2 exists only after t1 was forwarded), but the receiver
     logic must be safe for all six. *)
  List.iteri
    (fun i order ->
      let h = make_harness Style.Active in
      List.iter (fun (u, net) -> inject_token h ~net ~hops:u) order;
      Sim.run_until h.sim (Vtime.ms 1);
      (* In every interleaving the newest token (t2) completes on both
         networks, so it is delivered exactly once; t1 is delivered iff
         both its copies arrived before any t2 copy. *)
      let t2 = List.length (List.filter (( = ) 2) h.tokens_up) in
      Alcotest.(check int) (Printf.sprintf "scenario %d: t2 exactly once" (i + 1)) 1 t2;
      let t1_complete_first =
        match order with (1, a) :: (1, b) :: _ -> a <> b | _ -> false
      in
      let t1 = List.length (List.filter (( = ) 1) h.tokens_up) in
      Alcotest.(check int)
        (Printf.sprintf "scenario %d: t1 iff completed first" (i + 1))
        (if t1_complete_first then 1 else 0)
        t1)
    fig1_interleavings

(* A message copy and the token that follows it (active): the token
   must never be passed up before the message copies on the non-faulty
   networks have been handed up — because per-network FIFO means each
   net's token copy arrives after that net's message copy (A2). *)
let test_active_token_after_messages () =
  let orders =
    [
      [ `D 0; `D 1; `T 0; `T 1 ];
      [ `D 0; `T 0; `D 1; `T 1 ];
      [ `D 1; `D 0; `T 0; `T 1 ];
      [ `D 1; `T 1; `D 0; `T 0 ];
    ]
  in
  List.iteri
    (fun i order ->
      let h = make_harness Style.Active in
      List.iter
        (function
          | `D net -> inject_data h ~net ~seq:1
          | `T net -> inject_token h ~net ~hops:1)
        order;
      Sim.run_until h.sim (Vtime.ms 1);
      Alcotest.(check (list int))
        (Printf.sprintf "order %d: token delivered once, after data" (i + 1))
        [ 1 ] h.tokens_up;
      Alcotest.(check bool)
        (Printf.sprintf "order %d: data up before token" (i + 1))
        true
        (List.length h.data_up = 2))
    orders

(* Active: if one copy never arrives, the token timer delivers the
   token anyway (A4). *)
let test_active_token_timeout_delivers () =
  let h = make_harness Style.Active in
  inject_token h ~net:0 ~hops:1;
  Sim.run_until h.sim (Vtime.ms 1);
  Alcotest.(check (list int)) "held while a copy is outstanding" [] h.tokens_up;
  Sim.run_until h.sim (Vtime.ms 3);
  Alcotest.(check (list int)) "released by the timer" [ 1 ] h.tokens_up;
  (* The late copy arriving after expiry re-delivers; the SRP's
     duplicate filter handles it (paper Sec. 2). *)
  inject_token h ~net:1 ~hops:1;
  Alcotest.(check (list int)) "late copy re-delivered for SRP to filter"
    [ 1; 1 ] h.tokens_up

(* Fig. 3 scenario 1: the token overtakes message m1 on another
   network; it waits in the token buffer until m1 arrives (P1). *)
let test_fig3_scenario1 () =
  let h = make_harness Style.Passive in
  (* Token covering seq 1 arrives while m1 is still in flight. *)
  inject_token h ~net:1 ~hops:1;
  Alcotest.(check (list int)) "token buffered" [] h.tokens_up;
  (* m1 arrives: the fast path releases the token immediately. *)
  h.aru := 1;
  inject_data h ~net:0 ~seq:1;
  Alcotest.(check (list int)) "released by the arriving message" [ 1 ] h.tokens_up;
  Alcotest.(check (list int)) "message up first" [ 1 ] h.data_up

(* Fig. 3 scenario 2: a later message overtakes an earlier one; the
   token covering both waits for the stragglers, then the timer-less
   fast path fires on the last arrival. *)
let test_fig3_scenario2 () =
  let h = make_harness Style.Passive in
  inject_data h ~net:1 ~seq:2;
  inject_token h ~net:0 ~hops:2;
  Alcotest.(check (list int)) "token waits for m1" [] h.tokens_up;
  h.aru := 2;
  inject_data h ~net:0 ~seq:1;
  Alcotest.(check (list int)) "token released" [ 2 ] h.tokens_up

(* Passive: the 10 ms token timer guarantees progress when the missing
   message never arrives (P3). *)
let test_passive_timer_progress () =
  let h = make_harness Style.Passive in
  inject_token h ~net:0 ~hops:3;
  Sim.run_until h.sim (Vtime.ms 9);
  Alcotest.(check (list int)) "still buffered" [] h.tokens_up;
  Sim.run_until h.sim (Vtime.ms 11);
  Alcotest.(check (list int)) "released at the 10 ms timeout" [ 3 ] h.tokens_up

(* Passive: a token for a newer ring is never held against the old
   ring's aru. *)
let test_passive_foreign_ring_token_passes () =
  let h = make_harness Style.Passive in
  let foreign = { (token ~hops:0) with Token.ring_id = 99; seq = 1000 } in
  Rrp.frame_received h.rrp ~net:0 (Wire.token_frame const ~src:1 foreign);
  Alcotest.(check (list int)) "passed straight up" [ 0 ] h.tokens_up

(* Active-passive: the second stage passes the token at K copies. *)
let test_active_passive_k_copies () =
  let h = make_harness (Style.Active_passive 2) in
  inject_token h ~net:0 ~hops:1;
  Alcotest.(check (list int)) "one copy is not enough" [] h.tokens_up;
  inject_token h ~net:2 ~hops:1;
  Alcotest.(check (list int)) "K=2 copies deliver" [ 1 ] h.tokens_up;
  (* A third copy is not possible (only K sent), and the same instance
     from a retransmission is ignored once delivered. *)
  inject_token h ~net:1 ~hops:1;
  Alcotest.(check (list int)) "no redelivery" [ 1 ] h.tokens_up

(* Active-passive: timeout releases an incomplete token. *)
let test_active_passive_timeout () =
  let h = make_harness (Style.Active_passive 2) in
  inject_token h ~net:1 ~hops:5;
  Sim.run_until h.sim (Vtime.ms 3);
  Alcotest.(check (list int)) "released by timer" [ 5 ] h.tokens_up

let tests =
  [
    Alcotest.test_case "Fig. 1: six interleavings, messages" `Quick
      test_fig1_messages_active;
    Alcotest.test_case "Fig. 1: six interleavings, tokens" `Quick
      test_fig1_tokens_active;
    Alcotest.test_case "active: token after its messages (A2)" `Quick
      test_active_token_after_messages;
    Alcotest.test_case "active: timer releases incomplete token (A4)" `Quick
      test_active_token_timeout_delivers;
    Alcotest.test_case "Fig. 3 scenario 1: token overtakes message" `Quick
      test_fig3_scenario1;
    Alcotest.test_case "Fig. 3 scenario 2: message overtakes message" `Quick
      test_fig3_scenario2;
    Alcotest.test_case "passive: 10 ms timer progress (P3)" `Quick
      test_passive_timer_progress;
    Alcotest.test_case "passive: foreign-ring token passes" `Quick
      test_passive_foreign_ring_token_passes;
    Alcotest.test_case "active-passive: K copies deliver" `Quick
      test_active_passive_k_copies;
    Alcotest.test_case "active-passive: timeout" `Quick test_active_passive_timeout;
  ]
