open Totem_engine

let check_int = Alcotest.(check int)

let test_units () =
  check_int "us" 1_000 (Vtime.us 1);
  check_int "ms" 1_000_000 (Vtime.ms 1);
  check_int "sec" 1_000_000_000 (Vtime.sec 1);
  check_int "ns" 17 (Vtime.ns 17)

let test_float_conversions () =
  Alcotest.(check (float 1e-9)) "to_float_sec" 1.5 (Vtime.to_float_sec (Vtime.ms 1500));
  Alcotest.(check (float 1e-9)) "to_float_ms" 2.5 (Vtime.to_float_ms (Vtime.us 2500));
  check_int "of_float_sec" (Vtime.ms 250) (Vtime.of_float_sec 0.25);
  check_int "of_float rounds" 1 (Vtime.of_float_sec 1.4e-9)

let test_arithmetic () =
  check_int "add" (Vtime.ms 3) (Vtime.add (Vtime.ms 1) (Vtime.ms 2));
  check_int "sub negative" (-1_000_000) (Vtime.sub (Vtime.ms 1) (Vtime.ms 2));
  Alcotest.(check bool) "lt" true Vtime.(Vtime.ms 1 < Vtime.ms 2);
  Alcotest.(check bool) "ge" true Vtime.(Vtime.ms 2 >= Vtime.ms 2);
  check_int "min" (Vtime.ms 1) (Vtime.min (Vtime.ms 1) (Vtime.ms 2));
  check_int "max" (Vtime.ms 2) (Vtime.max (Vtime.ms 1) (Vtime.ms 2))

let test_pp () =
  let s v = Format.asprintf "%a" Vtime.pp v in
  Alcotest.(check string) "ns" "500ns" (s (Vtime.ns 500));
  Alcotest.(check string) "us" "1.500us" (s (Vtime.ns 1500));
  Alcotest.(check string) "ms" "2.000ms" (s (Vtime.ms 2));
  Alcotest.(check string) "s" "3.000s" (s (Vtime.sec 3));
  Alcotest.(check string) "negative" "-1.000ms" (s (Vtime.ns (-1_000_000)))

let tests =
  [
    Alcotest.test_case "unit constructors" `Quick test_units;
    Alcotest.test_case "float conversions" `Quick test_float_conversions;
    Alcotest.test_case "arithmetic and comparisons" `Quick test_arithmetic;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
