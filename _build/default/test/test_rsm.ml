(* The replicated-state-machine library: agreement, crash + reboot with
   ordered-broadcast state transfer, and transfer under live traffic. *)

open Util
module Rsm = Totem_rsm.Rsm

(* A pure counter machine: state = (sum, count). *)
let counter_spec =
  {
    Rsm.initial = (0, 0);
    apply = (fun (sum, n) c -> (sum + c, n + 1));
    cmd_size = (fun _ -> 16);
    state_size = (fun _ -> 32);
  }

let make_replicas ?(num_nodes = 4) ?style () =
  let t = make ~num_nodes ?style () in
  let g = Rsm.group counter_spec in
  let reps =
    Array.init num_nodes (fun node -> Rsm.attach t.cluster ~group:g ~node)
  in
  Cluster.start t.cluster;
  (t, reps)

let test_agreement () =
  let t, reps = make_replicas () in
  Rsm.submit reps.(0) 5;
  Rsm.submit reps.(1) 7;
  Rsm.submit reps.(3) 11;
  run_ms t 500;
  Array.iter
    (fun r ->
      Alcotest.(check (pair int int)) "same state" (23, 3) (Rsm.state r);
      Alcotest.(check int) "applied" 3 (Rsm.applied r))
    reps

let test_many_commands_many_submitters () =
  let t, reps = make_replicas ~num_nodes:5 () in
  for i = 1 to 200 do
    Rsm.submit reps.(i mod 5) i
  done;
  run_ms t 2000;
  let expected = (200 * 201 / 2, 200) in
  Array.iter
    (fun r -> Alcotest.(check (pair int int)) "sum formula" expected (Rsm.state r))
    reps

let test_state_transfer_after_reboot () =
  let t, reps = make_replicas () in
  Rsm.submit reps.(0) 1;
  run_ms t 200;
  Cluster.crash_node t.cluster 2;
  run_ms t 1000;
  (* Commands the crashed replica never sees. *)
  Rsm.submit reps.(0) 10;
  Rsm.submit reps.(1) 100;
  run_ms t 1000;
  Cluster.recover_node t.cluster 2;
  run_ms t 2000;
  Alcotest.(check bool) "stale before transfer" true
    (Rsm.state reps.(2) <> Rsm.state reps.(0));
  Rsm.request_state_transfer reps.(2);
  run_ms t 2000;
  Alcotest.(check bool) "caught up" true (Rsm.is_caught_up reps.(2));
  Alcotest.(check (pair int int)) "transferred state" (111, 3) (Rsm.state reps.(2));
  (* And it tracks from here on. *)
  Rsm.submit reps.(3) 1000;
  run_ms t 500;
  Array.iter
    (fun r -> Alcotest.(check (pair int int)) "all level" (1111, 4) (Rsm.state r))
    reps

let test_transfer_under_live_traffic () =
  (* Commands keep flowing while the snapshot is negotiated: the ones
     ordered after the marker must be buffered and replayed, none lost,
     none doubled. *)
  let t, reps = make_replicas () in
  Cluster.crash_node t.cluster 3;
  for i = 1 to 50 do
    Rsm.submit reps.(0) i
  done;
  run_ms t 1000;
  Cluster.recover_node t.cluster 3;
  run_ms t 1500;
  Rsm.request_state_transfer reps.(3);
  (* A steady stream through the whole transfer window. *)
  Workload.fixed_rate t.cluster ~node:1 ~size:64 ~interval:(Vtime.ms 1) ~count:100 ();
  for i = 51 to 100 do
    Rsm.submit reps.(1) i
  done;
  run_ms t 3000;
  let expected = (100 * 101 / 2, 100) in
  Alcotest.(check (pair int int)) "replica 0" expected (Rsm.state reps.(0));
  Alcotest.(check (pair int int)) "rebooted replica" expected (Rsm.state reps.(3))

let test_transfer_through_network_fault () =
  let t, reps = make_replicas ~style:Style.Active () in
  Cluster.crash_node t.cluster 1;
  Rsm.submit reps.(0) 42;
  run_ms t 1000;
  (* One network dies; the transfer must ride the survivor. *)
  Cluster.fail_network t.cluster 0;
  Cluster.recover_node t.cluster 1;
  run_ms t 2000;
  Rsm.request_state_transfer reps.(1);
  run_ms t 3000;
  Alcotest.(check (pair int int)) "transferred over one network" (42, 1)
    (Rsm.state reps.(1))

let tests =
  [
    Alcotest.test_case "replicas agree" `Quick test_agreement;
    Alcotest.test_case "200 commands, 5 submitters" `Quick
      test_many_commands_many_submitters;
    Alcotest.test_case "state transfer after reboot" `Quick
      test_state_transfer_after_reboot;
    Alcotest.test_case "transfer under live traffic" `Quick
      test_transfer_under_live_traffic;
    Alcotest.test_case "transfer through a network fault" `Quick
      test_transfer_through_network_fault;
  ]
