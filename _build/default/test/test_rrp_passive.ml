(* Passive replication (Figs. 4 and 5) — requirements P1 through P5. *)

open Util
module Rrp = Totem_rrp.Rrp
module Fault_report = Totem_rrp.Fault_report

let start ?num_nets ?seed ?rrp ?net ?num_nodes () =
  let t = make ~style:Style.Passive ?num_nets ?seed ?rrp ?net ?num_nodes () in
  Cluster.start t.cluster;
  t

(* Round-robin: messages and tokens alternate over the networks. *)
let test_round_robin_fairness () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 1000;
  let rrp1 = rrp_of t 1 in
  let a = Rrp.data_sent rrp1 ~net:0 and b = Rrp.data_sent rrp1 ~net:1 in
  Alcotest.(check bool) "busy" true (a + b > 1000);
  Alcotest.(check bool) "within one of each other" true (abs (a - b) <= 1);
  let ta = Rrp.tokens_sent rrp1 ~net:0 and tb = Rrp.tokens_sent rrp1 ~net:1 in
  Alcotest.(check bool) "tokens alternate too" true (abs (ta - tb) <= 1)

(* Bandwidth cost equals the unreplicated system: one copy per send. *)
let test_single_copy_per_send () =
  let t = start () in
  submit_n t ~node:1 ~size:500 40;
  run_ms t 500;
  let rrp1 = rrp_of t 1 in
  let total = Rrp.data_sent rrp1 ~net:0 + Rrp.data_sent rrp1 ~net:1 in
  Alcotest.(check int) "one frame per packet"
    (Srp.stats (srp_of t 1)).Srp.sent_packets total

(* P1: a token that overtakes messages on the other network must wait in
   the token buffer, not trigger retransmission of delayed messages
   (Fig. 3 scenario 1). We force overtaking with asymmetric latency. *)
let test_p1_overtaking_token_buffered () =
  let slow = { Totem_net.Network.default_config with
               Totem_net.Network.latency = Totem_engine.Vtime.ms 2 } in
  let fast = Totem_net.Network.default_config in
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive
      ~net_configs:[| slow; fast |] ()
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  for _ = 1 to 50 do
    Srp.submit (Cluster.srp (Cluster.node cluster 1)) ~size:700 ()
  done;
  Cluster.run_for cluster (Totem_engine.Vtime.sec 2);
  (* Everything delivered, in order, and with zero retransmission
     requests although tokens routinely overtook data on the fast net. *)
  let requested =
    List.fold_left
      (fun acc n ->
        acc
        + (Srp.stats (Cluster.srp (Cluster.node cluster n)))
            .Srp.retransmissions_requested)
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "all delivered" 50 (Cluster.delivered_at cluster 0);
  Alcotest.(check int) "P1: no spurious requests" 0 requested

(* P2: networks of different speeds stay in lockstep (the slower network
   cannot fall behind unboundedly, because the token rotates through
   it). *)
let test_p2_heterogeneous_speeds () =
  let fast = Totem_net.Network.default_config in
  let slow = { fast with Totem_net.Network.bandwidth_bps = 10_000_000 } in
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive
      ~net_configs:[| fast; slow |] ()
  in
  let cluster = Cluster.create config in
  let orders = Array.init 4 (fun _ -> ref []) in
  Cluster.on_deliver cluster (fun node m ->
      orders.(node) :=
        (m.Message.origin, m.Message.app_seq) :: !(orders.(node)));
  Cluster.start cluster;
  Workload.saturate cluster ~size:1024;
  Cluster.run_for cluster (Totem_engine.Vtime.sec 2);
  Alcotest.(check bool) "plenty delivered" true
    (Cluster.delivered_at cluster 0 > 2000);
  (* Nodes are cut off mid-stream, so compare the common prefix. *)
  let lists = Array.map (fun o -> List.rev !o) orders in
  let shortest = Array.fold_left (fun m l -> min m (List.length l)) max_int lists in
  let prefix l = List.filteri (fun i _ -> i < shortest) l in
  Array.iter
    (fun l -> if prefix l <> prefix lists.(0) then Alcotest.fail "order diverged")
    lists;
  (* No false fault reports from mere speed difference. *)
  Alcotest.(check int) "no reports" 0
    (List.length (Cluster.fault_reports cluster))

(* P3: progress when messages are lost — the buffered token is released
   by the timer and the SRP then repairs the loss. *)
let test_p3_progress_despite_loss () =
  let t = start ~seed:13 () in
  Cluster.set_network_loss t.cluster 0 0.1;
  Cluster.set_network_loss t.cluster 1 0.1;
  submit_n t ~node:1 ~size:700 100;
  submit_n t ~node:2 ~size:700 100;
  run_ms t 5000;
  check_delivered_everything t ~expected:200

(* P4: a dead network is detected by the reception-count monitors. *)
let test_p4_detection () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 300;
  Cluster.fail_network t.cluster 0;
  run_ms t 2000;
  for node = 0 to 3 do
    Alcotest.(check bool) (Printf.sprintf "node %d marked n'" node) true
      (Rrp.faulty (rrp_of t node)).(0)
  done;
  let reports = Cluster.fault_reports t.cluster in
  Alcotest.(check bool) "reports issued" true (List.length reports >= 4);
  List.iter
    (fun (_, r) ->
      match r.Fault_report.evidence with
      | Fault_report.Reception_lag { behind; _ } ->
        Alcotest.(check bool) "lag exceeds threshold" true (behind > 50)
      | Fault_report.Token_timeouts _ ->
        Alcotest.fail "passive replication reports reception lag")
    reports

(* After detection the ring keeps running on the surviving network. *)
let test_service_continues_after_detection () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 500;
  Cluster.fail_network t.cluster 0;
  run_ms t 2000;
  let before = Cluster.delivered_at t.cluster 0 in
  run_ms t 1000;
  let rate = Cluster.delivered_at t.cluster 0 - before in
  Alcotest.(check bool) "still above half speed" true (rate > 4000);
  Alcotest.(check int) "no membership change" 1
    (Srp.stats (srp_of t 0)).Srp.ring_changes

(* P5: sporadic loss must not condemn a network even over a long run. *)
let test_p5_sporadic_loss_no_false_alarm () =
  let t = start ~seed:17 () in
  Cluster.set_network_loss t.cluster 0 0.01;
  Workload.saturate t.cluster ~size:1024;
  run_ms t 10_000;
  Alcotest.(check int) "no false reports" 0
    (List.length (Cluster.fault_reports t.cluster))

(* The token buffer really is used: with asymmetric latency the passive
   layer must buffer tokens while data is in flight. *)
let test_token_buffering_observable () =
  let slow = { Totem_net.Network.default_config with
               Totem_net.Network.latency = Totem_engine.Vtime.ms 3 } in
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive
      ~net_configs:[| slow; Totem_net.Network.default_config |] ()
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  Totem_cluster.Workload.saturate cluster ~size:1024;
  (* Sample the buffered state while running. *)
  let seen_buffered = ref false in
  let rec sample n =
    if n > 0 then begin
      Cluster.run_for cluster (Totem_engine.Vtime.ms 1);
      for node = 0 to 3 do
        match Rrp.as_passive (Cluster.rrp (Cluster.node cluster node)) with
        | Some p -> if Totem_rrp.Passive.token_buffered p then seen_buffered := true
        | None -> ()
      done;
      sample (n - 1)
    end
  in
  sample 400;
  Alcotest.(check bool) "token buffer exercised" true !seen_buffered

(* Monitors are per sending node: M message monitors plus a token
   monitor (Sec. 6). *)
let test_monitor_structure () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 500;
  match Rrp.as_passive (rrp_of t 0) with
  | None -> Alcotest.fail "expected passive layer"
  | Some p ->
    (* Node 0 hears messages from 1, 2, 3 — three message monitors. *)
    List.iter
      (fun sender ->
        Alcotest.(check bool)
          (Printf.sprintf "monitor for sender %d" sender)
          true
          (Totem_rrp.Passive.message_monitor p ~sender <> None))
      [ 1; 2; 3 ];
    let tm = Totem_rrp.Passive.token_monitor p in
    Alcotest.(check bool) "token monitor counted both nets" true
      (Totem_rrp.Monitor.count tm ~net:0 > 0 && Totem_rrp.Monitor.count tm ~net:1 > 0)

let tests =
  [
    Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
    Alcotest.test_case "single copy per send" `Quick test_single_copy_per_send;
    Alcotest.test_case "P1: overtaking token buffered (Fig. 3)" `Quick
      test_p1_overtaking_token_buffered;
    Alcotest.test_case "P2: heterogeneous network speeds" `Quick
      test_p2_heterogeneous_speeds;
    Alcotest.test_case "P3: progress despite loss" `Slow test_p3_progress_despite_loss;
    Alcotest.test_case "P4: dead network detected" `Quick test_p4_detection;
    Alcotest.test_case "service continues after detection" `Quick
      test_service_continues_after_detection;
    Alcotest.test_case "P5: sporadic loss never condemns" `Slow
      test_p5_sporadic_loss_no_false_alarm;
    Alcotest.test_case "token buffer exercised" `Quick test_token_buffering_observable;
    Alcotest.test_case "M+1 monitor modules (Sec. 6)" `Quick test_monitor_structure;
  ]
