open Totem_srp

let const = Const.default

let test_initial_allowance () =
  let f = Flow.create () in
  Alcotest.(check int) "capped by per-visit max" const.Const.max_messages_per_token
    (Flow.allowance const f ~fcc:0 ~members:4)

let test_window_limits () =
  let f = Flow.create () in
  (* Other nodes consumed almost the whole window. *)
  let fcc = const.Const.window_size - 5 in
  (* The fair-share floor for one member of a large ring is small, so
     the window rule dominates here. *)
  let members = const.Const.window_size in
  Alcotest.(check int) "leftover" 5 (Flow.allowance const f ~fcc ~members);
  Alcotest.(check int) "window exhausted floors at fair share" 1
    (Flow.allowance const f ~fcc:const.Const.window_size ~members);
  Alcotest.(check int) "over-full window floors at fair share" 1
    (Flow.allowance const f ~fcc:(const.Const.window_size + 10) ~members)

let test_own_contribution_excluded () =
  let f = Flow.create () in
  let fcc = Flow.contribute f ~fcc:0 ~sent:20 in
  Alcotest.(check int) "fcc counts us" 20 fcc;
  (* On the next visit our own previous 20 must not count against us. *)
  Alcotest.(check int) "own share comes back"
    (min const.Const.max_messages_per_token const.Const.window_size)
    (Flow.allowance const f ~fcc ~members:1)

let test_contribute_replaces () =
  let f = Flow.create () in
  let fcc = Flow.contribute f ~fcc:10 ~sent:15 in
  Alcotest.(check int) "10 + 15" 25 fcc;
  let fcc = Flow.contribute f ~fcc ~sent:5 in
  Alcotest.(check int) "replaces previous 15 with 5" 15 fcc;
  Alcotest.(check int) "prev recorded" 5 (Flow.previous_contribution f)

let test_reset () =
  let f = Flow.create () in
  ignore (Flow.contribute f ~fcc:0 ~sent:9);
  Flow.reset f;
  Alcotest.(check int) "prev cleared" 0 (Flow.previous_contribution f)

let test_steady_state_fair_share () =
  (* Four saturating nodes converge to window/4 each per rotation (when
     under the per-visit cap): fcc stabilises at the window size. *)
  let nodes = Array.init 4 (fun _ -> Flow.create ()) in
  let fcc = ref 0 in
  for _rotation = 1 to 50 do
    Array.iter
      (fun f ->
        let a = Flow.allowance const f ~fcc:!fcc ~members:4 in
        fcc := Flow.contribute f ~fcc:!fcc ~sent:a)
      nodes
  done;
  (* The fair-share floor guarantees no node is starved and the window
     is never under-used; transient overshoot is bounded by one share. *)
  let share = const.Const.window_size / 4 in
  Alcotest.(check bool) "window filled" true (!fcc >= const.Const.window_size);
  Alcotest.(check bool) "bounded overshoot" true
    (!fcc <= const.Const.window_size + share);
  Array.iter
    (fun f ->
      Alcotest.(check bool) "no starvation" true
        (Flow.previous_contribution f >= share))
    nodes

let qcheck_never_negative =
  QCheck.Test.make ~name:"allowance is never negative" ~count:500
    QCheck.(pair (int_range 0 500) (int_range 0 100))
    (fun (fcc, prev) ->
      let f = Flow.create () in
      ignore (Flow.contribute f ~fcc:0 ~sent:prev);
      Flow.allowance const f ~fcc ~members:4 >= 0)

let tests =
  [
    Alcotest.test_case "initial allowance" `Quick test_initial_allowance;
    Alcotest.test_case "window limits" `Quick test_window_limits;
    Alcotest.test_case "own contribution excluded" `Quick test_own_contribution_excluded;
    Alcotest.test_case "contribute replaces previous" `Quick test_contribute_replaces;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "steady state fair share" `Quick test_steady_state_fair_share;
    QCheck_alcotest.to_alcotest qcheck_never_negative;
  ]
