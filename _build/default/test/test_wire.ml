(* Wire-level units: sizes, frame construction, pretty-printers. *)

module Wire = Totem_srp.Wire
module Const = Totem_srp.Const
module Message = Totem_srp.Message
module Token = Totem_srp.Token
module Addr = Totem_net.Addr
module Frame = Totem_net.Frame

let const = Const.default

let msg ~size = Message.make ~origin:1 ~app_seq:1 ~size ()

let test_element_bytes () =
  let whole = { Wire.message = msg ~size:700; fragment = None } in
  Alcotest.(check int) "header + body" 712 (Wire.element_bytes const whole);
  let frag =
    { Wire.message = msg ~size:5000; fragment = Some { Wire.index = 0; count = 4; bytes = 1412 } }
  in
  Alcotest.(check int) "fragment counts its own bytes" 1424
    (Wire.element_bytes const frag)

let test_packet_payload () =
  let p =
    {
      Wire.ring_id = 1;
      seq = 7;
      sender = 0;
      elements =
        [
          { Wire.message = msg ~size:100; fragment = None };
          { Wire.message = msg ~size:200; fragment = None };
        ];
    }
  in
  Alcotest.(check int) "sum of elements" (112 + 212) (Wire.packet_payload_bytes const p);
  let f = Wire.data_frame const ~src:0 p in
  Alcotest.(check int) "frame payload matches" 324 f.Frame.payload_bytes;
  (match f.Frame.payload with
  | Wire.Data p' -> Alcotest.(check int) "payload carried" 7 p'.Wire.seq
  | _ -> Alcotest.fail "expected Data payload")

let test_token_frame () =
  let tok = { (Token.initial ~ring:[| 0; 1 |] ~ring_id:1) with Token.rtr = [ 1; 2 ] } in
  let f = Wire.token_frame const ~src:1 tok in
  Alcotest.(check int) "token size"
    (const.Const.token_base_bytes + (2 * const.Const.token_rtr_entry_bytes))
    f.Frame.payload_bytes

let test_join_frame () =
  let j = { Wire.sender = 2; proc_set = [ 0; 1; 2 ]; fail_set = [ 3 ]; max_ring_id = 5 } in
  Alcotest.(check int) "join size"
    (const.Const.join_base_bytes + (4 * const.Const.join_entry_bytes))
    (Wire.join_payload_bytes const j);
  let f = Wire.join_frame const ~src:2 j in
  (match f.Frame.payload with
  | Wire.Join j' -> Alcotest.(check int) "sender carried" 2 j'.Wire.sender
  | _ -> Alcotest.fail "expected Join payload")

let test_probe_frame () =
  let p = { Wire.probe_sender = 1; probe_ring_id = 64 } in
  let f = Wire.probe_frame const ~src:1 p in
  Alcotest.(check int) "probe is tiny" 16 f.Frame.payload_bytes

let test_addr_pp () =
  let s pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "node" "N3" (s Addr.pp_node 3);
  Alcotest.(check string) "first net" "n'" (s Addr.pp_net 0);
  Alcotest.(check string) "second net" "n''" (s Addr.pp_net 1);
  Alcotest.(check string) "third net" "n'''" (s Addr.pp_net 2);
  Alcotest.(check string) "fourth net" "n#4" (s Addr.pp_net 3)

let test_fault_report_pp () =
  let r =
    {
      Totem_rrp.Fault_report.time = Totem_engine.Vtime.ms 5;
      reporter = 2;
      net = 0;
      evidence = Totem_rrp.Fault_report.Token_timeouts 10;
    }
  in
  let s = Format.asprintf "%a" Totem_rrp.Fault_report.pp r in
  let contains sub =
    let n = String.length sub and h = String.length s in
    let rec at i = i + n <= h && (String.sub s i n = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions the network" true (contains "n'");
  Alcotest.(check bool) "mentions the evidence" true (contains "10 token timeouts")

let test_message_pp () =
  let m = Message.make ~origin:1 ~app_seq:3 ~size:64 ~safe:true () in
  let s = Format.asprintf "%a" Message.pp m in
  Alcotest.(check string) "safe marked" "msg(N1 #3 64B safe)" s

let tests =
  [
    Alcotest.test_case "element bytes" `Quick test_element_bytes;
    Alcotest.test_case "packet payload and frame" `Quick test_packet_payload;
    Alcotest.test_case "token frame size" `Quick test_token_frame;
    Alcotest.test_case "join frame size" `Quick test_join_frame;
    Alcotest.test_case "probe frame size" `Quick test_probe_frame;
    Alcotest.test_case "address printing (paper notation)" `Quick test_addr_pp;
    Alcotest.test_case "fault report printing" `Quick test_fault_report_pp;
    Alcotest.test_case "message printing" `Quick test_message_pp;
  ]
