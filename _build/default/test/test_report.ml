(* The tabular/CSV/plot reporting used by the benchmark harness. *)

module Report = Totem_cluster.Report

let render f =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  f out;
  Format.pp_print_flush out ();
  Buffer.contents buf

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec at i = (i + nl <= hl) && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let test_table () =
  let s =
    render (fun out ->
        Report.print_table ~out ~title:"T" ~columns:[| "a"; "b" |]
          [ { Report.label = "row1"; cells = [| 1.0; 2.5 |] } ])
  in
  Alcotest.(check bool) "title" true (contains s "T");
  Alcotest.(check bool) "label" true (contains s "row1");
  Alcotest.(check bool) "cell" true (contains s "2.5")

let test_series () =
  let s =
    render (fun out ->
        Report.print_series ~out ~title:"S" ~x_label:"bytes" ~xs:[| 100; 200 |]
          [ ("one", [| 1.0; 2.0 |]); ("two", [| 3.0; 4.0 |]) ])
  in
  Alcotest.(check bool) "x label row" true (contains s "bytes=100");
  Alcotest.(check bool) "column name" true (contains s "two")

let test_csv () =
  let csv =
    Report.csv_of_series ~x_label:"bytes" ~xs:[| 100; 200 |]
      ~series:[ ("one", [| 1.0; 2.0 |]); ("two", [| 3.5; 4.0 |]) ]
  in
  Alcotest.(check string) "exact csv"
    "bytes,one,two\n100,1.00,3.50\n200,2.00,4.00\n" csv

let test_ascii_plot () =
  let s =
    render (fun out ->
        Report.ascii_plot ~out ~height:8 ~width:30 ~title:"P" ~log_y:true
          ~xs:[| 100; 1000; 10000 |]
          [ ("up", [| 10.0; 100.0; 1000.0 |]); ("down", [| 1000.0; 100.0; 10.0 |]) ])
  in
  Alcotest.(check bool) "title" true (contains s "P");
  Alcotest.(check bool) "legend a" true (contains s "a = up");
  Alcotest.(check bool) "legend b" true (contains s "b = down");
  (* The two series cross in the middle: an overlap marker appears. *)
  Alcotest.(check bool) "crossover marked" true (contains s "*");
  Alcotest.(check bool) "axis" true (contains s "(bytes, log scale)")

let test_ascii_plot_degenerate () =
  (* One point or an empty series must not raise. *)
  render (fun out ->
      Report.ascii_plot ~out ~title:"d" ~log_y:false ~xs:[| 5 |]
        [ ("x", [| 1.0 |]) ])
  |> ignore;
  render (fun out ->
      Report.ascii_plot ~out ~title:"d" ~log_y:false ~xs:[||] [])
  |> ignore;
  (* Constant series: zero span handled. *)
  render (fun out ->
      Report.ascii_plot ~out ~title:"d" ~log_y:false ~xs:[| 1; 2 |]
        [ ("c", [| 7.0; 7.0 |]) ])
  |> ignore

let test_ratio () =
  Alcotest.(check (float 1e-9)) "normal" 2.0 (Report.ratio 4.0 2.0);
  Alcotest.(check (float 1e-9)) "zero denominator" 0.0 (Report.ratio 4.0 0.0)

let tests =
  [
    Alcotest.test_case "table" `Quick test_table;
    Alcotest.test_case "series" `Quick test_series;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
    Alcotest.test_case "ascii plot degenerate inputs" `Quick
      test_ascii_plot_degenerate;
    Alcotest.test_case "ratio" `Quick test_ratio;
  ]
