open Totem_engine

let make () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let timer = Timer.create sim ~name:"t" ~callback:(fun () -> incr fired) in
  (sim, timer, fired)

let test_fires () =
  let sim, timer, fired = make () in
  Timer.start timer (Vtime.ms 5);
  Alcotest.(check bool) "running" true (Timer.is_running timer);
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check int) "fired once" 1 !fired;
  Alcotest.(check bool) "stopped after firing" false (Timer.is_running timer)

let test_stop () =
  let sim, timer, fired = make () in
  Timer.start timer (Vtime.ms 5);
  Timer.stop timer;
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check int) "never fired" 0 !fired;
  Timer.stop timer (* idempotent *)

let test_double_start_rejected () =
  let _sim, timer, _ = make () in
  Timer.start timer (Vtime.ms 5);
  Alcotest.check_raises "double start"
    (Invalid_argument "Timer.start: t already running") (fun () ->
      Timer.start timer (Vtime.ms 5))

let test_start_if_stopped () =
  let sim, timer, fired = make () in
  Timer.start_if_stopped timer (Vtime.ms 5);
  Timer.start_if_stopped timer (Vtime.ms 1) (* no-op: already armed for 5 *);
  Sim.run_until sim (Vtime.ms 2);
  Alcotest.(check int) "not fired early" 0 !fired;
  Sim.run_until sim (Vtime.ms 6);
  Alcotest.(check int) "fired at original deadline" 1 !fired

let test_restart () =
  let sim, timer, fired = make () in
  Timer.start timer (Vtime.ms 5);
  Sim.run_until sim (Vtime.ms 3);
  Timer.restart timer (Vtime.ms 5);
  Sim.run_until sim (Vtime.ms 6);
  Alcotest.(check int) "old deadline cancelled" 0 !fired;
  Sim.run_until sim (Vtime.ms 9);
  Alcotest.(check int) "new deadline fired" 1 !fired

let test_fires_at () =
  let sim, timer, _ = make () in
  Alcotest.(check (option int)) "stopped" None (Timer.fires_at timer);
  Sim.run_until sim (Vtime.ms 2);
  Timer.start timer (Vtime.ms 5);
  Alcotest.(check (option int)) "absolute expiry" (Some (Vtime.ms 7))
    (Timer.fires_at timer)

let test_callback_can_restart () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let timer_ref = ref None in
  let timer =
    Timer.create sim ~name:"periodic" ~callback:(fun () ->
        incr fired;
        if !fired < 3 then Timer.start (Option.get !timer_ref) (Vtime.ms 1))
  in
  timer_ref := Some timer;
  Timer.start timer (Vtime.ms 1);
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check int) "self-restarting" 3 !fired

let tests =
  [
    Alcotest.test_case "fires once" `Quick test_fires;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "double start rejected" `Quick test_double_start_rejected;
    Alcotest.test_case "start_if_stopped" `Quick test_start_if_stopped;
    Alcotest.test_case "restart" `Quick test_restart;
    Alcotest.test_case "fires_at" `Quick test_fires_at;
    Alcotest.test_case "callback can restart" `Quick test_callback_can_restart;
  ]
