(* Robustness of the gather/commit/recover membership machinery itself:
   lost commit tokens, a representative dying mid-reconfiguration,
   cascading crashes, and reformation under sustained loss. *)

open Util

let test_reformation_under_loss () =
  (* 30% loss on the only network while the ring reforms: the commit
     token retransmission and the phase deadlines must converge anyway. *)
  let t = make ~num_nets:1 ~style:Style.No_replication ~seed:31 () in
  Cluster.start t.cluster;
  Cluster.set_network_loss t.cluster 0 0.3;
  run_ms t 300;
  Cluster.crash_node t.cluster 0;
  run_ms t 10_000;
  let srp1 = srp_of t 1 in
  Alcotest.(check bool) "operational" true (Srp.is_operational srp1);
  Alcotest.(check int) "three survivors" 3 (Array.length (Srp.members srp1));
  (* And the reformed ring works. *)
  Cluster.set_network_loss t.cluster 0 0.0;
  submit_n t ~node:1 ~size:300 10;
  run_ms t 1000;
  let o1 = order t 1 and o2 = order t 2 and o3 = order t 3 in
  Alcotest.(check bool) "survivors agree" true (o1 = o2 && o2 = o3);
  Alcotest.(check bool) "new traffic delivered" true
    (List.exists (fun (o, _) -> o = 1) o1)

let test_representative_dies_mid_reconfiguration () =
  let t = make ~num_nets:2 ~style:Style.Active () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:512;
  run_ms t 200;
  (* Node 0 dies; node 1 becomes the representative of the survivors.
     Kill node 1 just as the first reconfiguration should be in its
     commit phase, leaving {2, 3} to start over. *)
  Cluster.crash_node t.cluster 0;
  run_ms t 285;
  Cluster.crash_node t.cluster 1;
  run_ms t 5000;
  let srp2 = srp_of t 2 in
  Alcotest.(check bool) "operational" true (Srp.is_operational srp2);
  Alcotest.(check (array int)) "the last two found each other" [| 2; 3 |]
    (Srp.members srp2);
  let before = Cluster.delivered_at t.cluster 2 in
  run_ms t 500;
  Alcotest.(check bool) "two-node ring carries traffic" true
    (Cluster.delivered_at t.cluster 2 > before)

let test_cascade_to_singleton () =
  let t = make ~num_nets:2 ~style:Style.Passive () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:512;
  run_ms t 200;
  Cluster.crash_node t.cluster 0;
  run_ms t 1500;
  Cluster.crash_node t.cluster 1;
  run_ms t 1500;
  Cluster.crash_node t.cluster 2;
  run_ms t 3000;
  let srp3 = srp_of t 3 in
  Alcotest.(check bool) "last node operational" true (Srp.is_operational srp3);
  Alcotest.(check (array int)) "alone" [| 3 |] (Srp.members srp3);
  (* A singleton ring still orders and delivers its own (saturated)
     traffic at full tilt. *)
  let before = Cluster.delivered_at t.cluster 3 in
  run_ms t 1000;
  Alcotest.(check bool) "self delivery on singleton ring" true
    (Cluster.delivered_at t.cluster 3 - before > 1000)

let test_simultaneous_crashes () =
  let t = make ~num_nodes:6 ~num_nets:2 ~style:Style.Active () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:512;
  run_ms t 200;
  Cluster.crash_node t.cluster 1;
  Cluster.crash_node t.cluster 3;
  Cluster.crash_node t.cluster 4;
  run_ms t 5000;
  let srp0 = srp_of t 0 in
  Alcotest.(check (array int)) "three survivors in one ring" [| 0; 2; 5 |]
    (Srp.members srp0);
  let o0 = order t 0 and o2 = order t 2 and o5 = order t 5 in
  let shortest = min (List.length o0) (min (List.length o2) (List.length o5)) in
  let prefix l = List.filteri (fun i _ -> i < shortest) l in
  Alcotest.(check bool) "orders consistent" true
    (prefix o0 = prefix o2 && prefix o2 = prefix o5)

let test_reformation_during_network_fault_and_loss () =
  (* The worst combination: one network dead (masked by the RRP), loss
     on the survivor, and then a node crash forcing membership to run
     over the lossy survivor. *)
  let t = make ~num_nets:2 ~style:Style.Active ~seed:77 () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:512;
  run_ms t 300;
  Cluster.fail_network t.cluster 0;
  Cluster.set_network_loss t.cluster 1 0.15;
  run_ms t 500;
  Cluster.crash_node t.cluster 2;
  run_ms t 10_000;
  let srp0 = srp_of t 0 in
  Alcotest.(check bool) "operational" true (Srp.is_operational srp0);
  Alcotest.(check (array int)) "survivors" [| 0; 1; 3 |] (Srp.members srp0);
  let before = Cluster.delivered_at t.cluster 0 in
  run_ms t 1000;
  Alcotest.(check bool) "traffic flows" true
    (Cluster.delivered_at t.cluster 0 > before)

let tests =
  [
    Alcotest.test_case "reformation under 30% loss" `Slow test_reformation_under_loss;
    Alcotest.test_case "representative dies mid-reconfiguration" `Quick
      test_representative_dies_mid_reconfiguration;
    Alcotest.test_case "cascade down to a singleton" `Quick test_cascade_to_singleton;
    Alcotest.test_case "three simultaneous crashes" `Quick test_simultaneous_crashes;
    Alcotest.test_case "reformation over a lossy survivor network" `Slow
      test_reformation_during_network_fault_and_loss;
  ]
