open Totem_engine

let test_serial_execution () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"c" in
  let log = ref [] in
  Cpu.submit cpu ~cost:(Vtime.ms 2) (fun () -> log := ("a", Sim.now sim) :: !log);
  Cpu.submit cpu ~cost:(Vtime.ms 3) (fun () -> log := ("b", Sim.now sim) :: !log);
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check (list (pair string int)))
    "completion instants"
    [ ("b", Vtime.ms 5); ("a", Vtime.ms 2) ]
    !log

let test_busy_accounting () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"c" in
  Cpu.charge cpu ~cost:(Vtime.ms 1);
  Cpu.charge cpu ~cost:(Vtime.ms 2);
  Alcotest.(check int) "busy time" (Vtime.ms 3) (Cpu.busy_time cpu);
  Alcotest.(check int) "free_at" (Vtime.ms 3) (Cpu.free_at cpu)

let test_idle_gap () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"c" in
  Cpu.charge cpu ~cost:(Vtime.ms 1);
  Sim.run_until sim (Vtime.ms 5);
  (* CPU idled from 1 to 5; new work starts now. *)
  Cpu.charge cpu ~cost:(Vtime.ms 2);
  Alcotest.(check int) "free_at after gap" (Vtime.ms 7) (Cpu.free_at cpu);
  Alcotest.(check int) "busy only charged" (Vtime.ms 3) (Cpu.busy_time cpu)

let test_zero_cost_runs_at_drain () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"c" in
  let at = ref (-1) in
  Cpu.charge cpu ~cost:(Vtime.ms 4);
  Cpu.submit cpu ~cost:Vtime.zero (fun () -> at := Sim.now sim);
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check int) "after backlog" (Vtime.ms 4) !at

let test_negative_rejected () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"c" in
  Alcotest.check_raises "negative" (Invalid_argument "Cpu.charge: negative cost on c")
    (fun () -> Cpu.charge cpu ~cost:(-1))

let test_utilisation () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"c" in
  Cpu.charge cpu ~cost:(Vtime.ms 3);
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check (float 0.001)) "30%" 0.3
    (Cpu.utilisation cpu ~since:Vtime.zero ~now:(Sim.now sim))

let tests =
  [
    Alcotest.test_case "serial FIFO execution" `Quick test_serial_execution;
    Alcotest.test_case "busy accounting" `Quick test_busy_accounting;
    Alcotest.test_case "idle gaps not charged" `Quick test_idle_gap;
    Alcotest.test_case "zero cost runs at drain" `Quick test_zero_cost_runs_at_drain;
    Alcotest.test_case "negative cost rejected" `Quick test_negative_rejected;
    Alcotest.test_case "utilisation" `Quick test_utilisation;
  ]
