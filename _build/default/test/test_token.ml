open Totem_srp

let ring = [| 0; 1; 2; 3 |]

let test_initial () =
  let t = Token.initial ~ring ~ring_id:1 in
  Alcotest.(check int) "seq" 0 t.Token.seq;
  Alcotest.(check int) "rotation" 0 t.Token.rotation;
  Alcotest.(check int) "hops" 0 t.Token.hops;
  Alcotest.(check int) "aru" 0 t.Token.aru;
  Alcotest.(check (list int)) "rtr" [] t.Token.rtr;
  Alcotest.check_raises "empty ring" (Invalid_argument "Token.initial: empty ring")
    (fun () -> ignore (Token.initial ~ring:[||] ~ring_id:1))

let test_newer_by_hops () =
  let t0 = Token.initial ~ring ~ring_id:1 in
  let t1 = { t0 with Token.hops = 1; seq = 0 } in
  (* The idle-ring case of footnote 1: same seq, but the forwarded token
     is newer. *)
  Alcotest.(check bool) "forwarded is newer" true (Token.newer_than t1 ~than:t0);
  Alcotest.(check bool) "not vice versa" false (Token.newer_than t0 ~than:t1);
  Alcotest.(check bool) "not newer than itself" false (Token.newer_than t0 ~than:t0)

let test_newer_by_ring () =
  let t0 = Token.initial ~ring ~ring_id:1 in
  let t1 = { (Token.initial ~ring ~ring_id:2) with Token.hops = 0 } in
  Alcotest.(check bool) "newer ring wins" true (Token.newer_than t1 ~than:t0)

let test_same_instance () =
  let t0 = Token.initial ~ring ~ring_id:1 in
  let copy = { t0 with Token.aru = 5 } in
  (* A retransmitted copy is the same instance even if mutable-ish
     bookkeeping fields were different when serialised. *)
  Alcotest.(check bool) "same (ring, hops)" true (Token.same_instance t0 copy);
  let next = { t0 with Token.hops = 1 } in
  Alcotest.(check bool) "different hops" false (Token.same_instance t0 next)

let test_payload_bytes () =
  let c = Const.default in
  let t0 = Token.initial ~ring ~ring_id:1 in
  Alcotest.(check int) "base size" c.Const.token_base_bytes (Token.payload_bytes c t0);
  let with_rtr = { t0 with Token.rtr = [ 1; 2; 3 ] } in
  Alcotest.(check int) "rtr entries add up"
    (c.Const.token_base_bytes + (3 * c.Const.token_rtr_entry_bytes))
    (Token.payload_bytes c with_rtr);
  let huge = { t0 with Token.rtr = List.init 10_000 Fun.id } in
  Alcotest.(check int) "clamped to frame payload" Totem_net.Frame.max_payload_bytes
    (Token.payload_bytes c huge)

let tests =
  [
    Alcotest.test_case "initial token" `Quick test_initial;
    Alcotest.test_case "newer by hops (footnote 1)" `Quick test_newer_by_hops;
    Alcotest.test_case "newer by ring id" `Quick test_newer_by_ring;
    Alcotest.test_case "same instance" `Quick test_same_instance;
    Alcotest.test_case "payload size" `Quick test_payload_bytes;
  ]
