open Totem_engine

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Rng.int64 a <> Rng.int64 b)

let test_int_bounds () =
  let rng = Rng.create ~seed:99 in
  (* Regression: Int64.to_int truncation used to produce negatives. *)
  for _ = 1 to 10_000 do
    let v = Rng.int rng 8 in
    if v < 0 || v >= 8 then Alcotest.failf "out of bounds: %d" v
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_range () =
  let rng = Rng.create ~seed:5 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 10) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.0 in
    if v < 0.0 || v >= 3.0 then Alcotest.failf "float out of bounds: %f" v
  done

let test_split_independence () =
  let root = Rng.create ~seed:42 in
  let child = Rng.split root in
  (* Drawing from the child must not change what a copy of the root
     draws next. *)
  let root_copy = Rng.copy root in
  for _ = 1 to 10 do
    ignore (Rng.int64 child)
  done;
  Alcotest.(check int64) "root unaffected by child draws" (Rng.int64 root_copy)
    (Rng.int64 root)

let test_bernoulli_extremes () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create ~seed:8 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_exponential_mean () =
  let rng = Rng.create ~seed:21 in
  let n = 100_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 2.0" true (abs_float (mean -. 2.0) < 0.05)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_pick () =
  let rng = Rng.create ~seed:17 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng a in
    Alcotest.(check bool) "picked element" true (Array.mem v a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always in [0,bound)" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let tests =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds (sign regression)" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick" `Quick test_pick;
    QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
  ]
