(* The binary wire codec: round trips, size honesty against the
   simulation's charging model, and malformed-input rejection. *)

module Codec = Totem_srp.Codec
module Wire = Totem_srp.Wire
module Token = Totem_srp.Token
module Message = Totem_srp.Message
module Const = Totem_srp.Const
module Packing = Totem_srp.Packing

let const = Const.default

let msg ?(origin = 1) ?(app_seq = 1) ?(safe = false) ~size () =
  Message.make ~origin ~app_seq ~size ~safe ()

let whole ?origin ?app_seq ?safe ~size () =
  { Wire.message = msg ?origin ?app_seq ?safe ~size (); fragment = None }

let packet ?(ring_id = 1) ?(seq = 42) ?(sender = 2) elements =
  { Wire.ring_id; seq; sender; elements }

(* Messages carry no comparable payload closure, so compare field by
   field. *)
let check_message name (a : Message.t) (b : Message.t) =
  Alcotest.(check int) (name ^ " origin") a.origin b.origin;
  Alcotest.(check int) (name ^ " app_seq") a.app_seq b.app_seq;
  Alcotest.(check int) (name ^ " size") a.size b.size;
  Alcotest.(check bool) (name ^ " safe") a.safe b.safe

let check_packet name (a : Wire.packet) (b : Wire.packet) =
  Alcotest.(check int) (name ^ " ring") a.ring_id b.ring_id;
  Alcotest.(check int) (name ^ " seq") a.seq b.seq;
  Alcotest.(check int) (name ^ " sender") a.sender b.sender;
  Alcotest.(check int) (name ^ " count") (List.length a.elements)
    (List.length b.elements);
  List.iter2
    (fun (x : Wire.element) (y : Wire.element) ->
      check_message name x.message y.message;
      Alcotest.(check bool) (name ^ " frag presence") (x.fragment <> None)
        (y.fragment <> None);
      match (x.fragment, y.fragment) with
      | Some f, Some g ->
        Alcotest.(check int) (name ^ " index") f.Wire.index g.Wire.index;
        Alcotest.(check int) (name ^ " fcount") f.Wire.count g.Wire.count;
        Alcotest.(check int) (name ^ " fbytes") f.Wire.bytes g.Wire.bytes
      | _ -> ())
    a.elements b.elements

let test_packet_roundtrip () =
  let p =
    packet
      [ whole ~size:700 (); whole ~origin:3 ~app_seq:9 ~safe:true ~size:700 () ]
  in
  match Codec.decode (Codec.encode_packet p) with
  | Ok (Codec.Packet p') -> check_packet "packed pair" p p'
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.failf "decode error: %a" Codec.pp_error e

let test_fragment_roundtrip () =
  let elements = Packing.elements_of_message const (msg ~size:5000 ()) in
  let p = packet elements in
  match Codec.decode (Codec.encode_packet p) with
  | Ok (Codec.Packet p') -> check_packet "fragments" p p'
  | _ -> Alcotest.fail "decode failed"

let test_token_roundtrip () =
  let t =
    {
      (Token.initial ~ring:[| 0; 1; 2; 5 |] ~ring_id:129) with
      Token.seq = 100_000;
      rotation = 777;
      hops = 3111;
      aru = 99_998;
      aru_setter = 5;
      fcc = 50;
      rtr = [ 99_999; 100_000 ];
    }
  in
  match Codec.decode (Codec.encode_token t) with
  | Ok (Codec.Token t') ->
    Alcotest.(check bool) "identical" true (t = t')
  | _ -> Alcotest.fail "decode failed"

let test_join_roundtrip () =
  let j = { Wire.sender = 3; proc_set = [ 0; 1; 3 ]; fail_set = [ 2 ]; max_ring_id = 640 } in
  match Codec.decode (Codec.encode_join j) with
  | Ok (Codec.Join j') -> Alcotest.(check bool) "identical" true (j = j')
  | _ -> Alcotest.fail "decode failed"

let test_probe_roundtrip () =
  let p = { Wire.probe_sender = 4; probe_ring_id = 192 } in
  match Codec.decode (Codec.encode_probe p) with
  | Ok (Codec.Probe p') -> Alcotest.(check bool) "identical" true (p = p')
  | _ -> Alcotest.fail "decode failed"

(* Size honesty: for whole-message packets the encoded bytes must be at
   most the size the simulation charges to the wire (packet header
   within the 94-byte frame-overhead budget; 12 bytes per element). *)
let test_size_honesty_whole () =
  List.iter
    (fun sizes ->
      let elements = List.mapi (fun i s -> whole ~app_seq:(i + 1) ~size:s ()) sizes in
      let p = packet elements in
      let charged = Wire.packet_payload_bytes const p + 12 (* packet header *) in
      let encoded = String.length (Codec.encode_packet p) in
      if encoded > charged then
        Alcotest.failf "sizes %s: encoded %d > charged %d"
          (String.concat "," (List.map string_of_int sizes))
          encoded charged)
    [ [ 700; 700 ]; [ 100 ]; [ 0; 0; 0 ]; [ 1400 ]; [ 64; 128; 256; 512 ] ]

let test_size_honesty_token () =
  let t =
    {
      (Token.initial ~ring:[| 0; 1; 2; 3; 4; 5 |] ~ring_id:1) with
      Token.rtr = List.init 100 Fun.id;
    }
  in
  Alcotest.(check bool) "token fits its declared size" true
    (String.length (Codec.encode_token t) <= Token.payload_bytes const t)

let test_size_honesty_join () =
  let j =
    { Wire.sender = 0; proc_set = List.init 6 Fun.id; fail_set = [ 9 ]; max_ring_id = 3 }
  in
  Alcotest.(check bool) "join fits its declared size" true
    (String.length (Codec.encode_join j) <= Wire.join_payload_bytes const j)

let test_rejects_garbage () =
  (match Codec.decode "" with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "empty should be truncated");
  (match Codec.decode "\xff___" with
  | Error (Codec.Bad_tag 0xff) -> ()
  | _ -> Alcotest.fail "bad tag expected");
  let good = Codec.encode_probe { Wire.probe_sender = 1; probe_ring_id = 2 } in
  (match Codec.decode (good ^ "x") with
  | Error (Codec.Trailing_bytes 1) -> ()
  | _ -> Alcotest.fail "trailing byte expected");
  match Codec.decode (String.sub good 0 (String.length good - 1)) with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "truncation expected"

let qcheck_packet_roundtrip =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* sizes = list_size (return n) (int_range 0 1412) in
      let* ring_id = int_range 0 100_000 in
      let* seq = int_range 0 1_000_000 in
      let* sender = int_range 0 63 in
      return (ring_id, seq, sender, sizes))
  in
  QCheck.Test.make ~name:"packet encode/decode round trip" ~count:300
    (QCheck.make gen) (fun (ring_id, seq, sender, sizes) ->
      let elements =
        List.mapi
          (fun i s ->
            whole ~origin:(i mod 7) ~app_seq:(i + 1) ~safe:(i mod 2 = 0) ~size:s ())
          sizes
      in
      let p = packet ~ring_id ~seq ~sender elements in
      match Codec.decode (Codec.encode_packet p) with
      | Ok (Codec.Packet p') ->
        p'.Wire.ring_id = ring_id && p'.Wire.seq = seq
        && p'.Wire.sender = sender
        && List.for_all2
             (fun (a : Wire.element) (b : Wire.element) ->
               a.message.Message.size = b.message.Message.size
               && a.message.Message.origin = b.message.Message.origin
               && a.message.Message.app_seq = b.message.Message.app_seq
               && a.message.Message.safe = b.message.Message.safe)
             p.elements p'.elements
      | _ -> false)

let qcheck_token_roundtrip =
  QCheck.Test.make ~name:"token encode/decode round trip" ~count:300
    QCheck.(
      quad (int_range 0 100_000) (int_range 0 1_000_000) (int_range 0 10_000)
        (list_of_size (Gen.int_range 0 50) (int_range 0 1_000_000)))
    (fun (ring_id, seq, hops, rtr) ->
      let t =
        {
          (Token.initial ~ring:[| 0; 1; 2 |] ~ring_id:(ring_id + 1)) with
          Token.seq;
          hops;
          rtr = List.sort_uniq compare rtr;
        }
      in
      Codec.decode (Codec.encode_token t) = Ok (Codec.Token t))

let test_custom_data_codec () =
  let module M = struct
    type Message.data += Text of string
  end in
  Codec.set_data_codec
    ~encode:(function M.Text s -> s | _ -> "")
    ~decode:(fun s -> M.Text s);
  Fun.protect
    ~finally:(fun () ->
      Codec.set_data_codec
        ~encode:(fun _ -> "")
        ~decode:(fun _ -> Message.Blob))
    (fun () ->
      let m = Message.make ~origin:1 ~app_seq:1 ~size:5 ~data:(M.Text "hello") () in
      let p = packet [ { Wire.message = m; fragment = None } ] in
      match Codec.decode (Codec.encode_packet p) with
      | Ok (Codec.Packet p') -> (
        match (List.hd p'.Wire.elements).Wire.message.Message.data with
        | M.Text s -> Alcotest.(check string) "payload carried" "hello" s
        | _ -> Alcotest.fail "wrong payload")
      | _ -> Alcotest.fail "decode failed")

(* The strongest codec validation: run a whole cluster — saturating
   traffic, a network failure, a node crash forcing gather, commit and
   recovery — with every frame's payload shadow-encoded and decoded.
   Any byte-format defect aborts the run. *)
let test_shadow_mode_full_protocol () =
  let config =
    Totem_cluster.Config.make ~num_nodes:4 ~num_nets:2
      ~style:Totem_rrp.Style.Active ~codec_shadow:true ()
  in
  let cluster = Totem_cluster.Cluster.create config in
  Totem_cluster.Cluster.start cluster;
  Totem_cluster.Workload.saturate cluster ~size:700;
  Totem_cluster.Cluster.run_for cluster (Totem_engine.Vtime.ms 300);
  Totem_cluster.Cluster.fail_network cluster 0;
  Totem_cluster.Cluster.run_for cluster (Totem_engine.Vtime.ms 500);
  Totem_cluster.Cluster.crash_node cluster 2;
  Totem_cluster.Cluster.run_for cluster (Totem_engine.Vtime.sec 2);
  Alcotest.(check bool) "survived with shadow checks on every frame" true
    (Totem_cluster.Cluster.delivered_at cluster 0 > 1000)

let test_commit_roundtrip () =
  let cm =
    { Wire.cm_ring_id = 128; cm_ring = [| 0; 2; 3 |]; cm_round = 2;
      cm_info =
        [ { Wire.mi_node = 0; mi_old_ring = 64; mi_aru = 17 };
          { Wire.mi_node = 3; mi_old_ring = 1; mi_aru = 0 } ] }
  in
  match Codec.decode (Codec.encode_commit cm) with
  | Ok (Codec.Commit cm') -> Alcotest.(check bool) "identical" true (cm = cm')
  | _ -> Alcotest.fail "decode failed"

let tests =
  [
    Alcotest.test_case "packet round trip" `Quick test_packet_roundtrip;
    Alcotest.test_case "commit round trip" `Quick test_commit_roundtrip;
    Alcotest.test_case "shadow mode over the full protocol" `Quick
      test_shadow_mode_full_protocol;
    Alcotest.test_case "fragment round trip" `Quick test_fragment_roundtrip;
    Alcotest.test_case "token round trip" `Quick test_token_roundtrip;
    Alcotest.test_case "join round trip" `Quick test_join_roundtrip;
    Alcotest.test_case "probe round trip" `Quick test_probe_roundtrip;
    Alcotest.test_case "size honesty: packets" `Quick test_size_honesty_whole;
    Alcotest.test_case "size honesty: token" `Quick test_size_honesty_token;
    Alcotest.test_case "size honesty: join" `Quick test_size_honesty_join;
    Alcotest.test_case "rejects malformed input" `Quick test_rejects_garbage;
    Alcotest.test_case "custom application payload codec" `Quick
      test_custom_data_codec;
    QCheck_alcotest.to_alcotest qcheck_packet_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_token_roundtrip;
  ]
