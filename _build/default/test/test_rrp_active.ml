(* Active replication (Fig. 2) — requirements A1 through A6. *)

open Util
module Rrp = Totem_rrp.Rrp
module Fault_report = Totem_rrp.Fault_report

let start ?num_nets ?seed ?rrp ?net () =
  let t = make ~style:Style.Active ?num_nets ?seed ?rrp ?net () in
  Cluster.start t.cluster;
  t

let test_sends_on_all_networks () =
  let t = start () in
  submit_n t ~node:1 ~size:500 20;
  run_ms t 500;
  let rrp1 = rrp_of t 1 in
  Alcotest.(check bool) "data on n'" true (Rrp.data_sent rrp1 ~net:0 > 0);
  Alcotest.(check int) "same count on n''" (Rrp.data_sent rrp1 ~net:0)
    (Rrp.data_sent rrp1 ~net:1);
  Alcotest.(check int) "tokens duplicated too" (Rrp.tokens_sent rrp1 ~net:0)
    (Rrp.tokens_sent rrp1 ~net:1)

(* A1: each message delivered exactly once despite N copies. *)
let test_a1_single_delivery () =
  let t = start () in
  submit_n t ~node:1 ~size:500 50;
  submit_n t ~node:2 ~size:500 50;
  run_ms t 1000;
  check_delivered_everything t ~expected:100;
  let dups = (Srp.stats (srp_of t 0)).Srp.duplicate_packets in
  Alcotest.(check bool) "duplicates were filtered, not delivered" true (dups > 0)

(* A2: losing a copy on one network must not trigger a retransmission. *)
let test_a2_no_spurious_retransmission () =
  let t = start ~seed:11 () in
  (* n'' drops 30% of frames; every loss is masked by the copy on n'. *)
  Cluster.set_network_loss t.cluster 1 0.3;
  submit_n t ~node:1 ~size:700 100;
  submit_n t ~node:3 ~size:700 100;
  run_ms t 2000;
  check_delivered_everything t ~expected:200;
  let requested =
    List.fold_left
      (fun acc n -> acc + (Srp.stats (srp_of t n)).Srp.retransmissions_requested)
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "no retransmission requests" 0 requested

(* A4: progress although one network is completely dead. *)
let test_a4_progress_through_total_failure () =
  let t = start () in
  submit_n t ~node:1 ~size:500 10;
  run_ms t 300;
  Cluster.fail_network t.cluster 0;
  submit_n t ~node:2 ~size:500 30;
  run_ms t 2000;
  check_delivered_everything t ~expected:40;
  Alcotest.(check int) "no membership change" 1
    (Srp.stats (srp_of t 0)).Srp.ring_changes

(* A5: a dead network is eventually declared faulty by every node. *)
let test_a5_detection () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 300;
  Cluster.fail_network t.cluster 1;
  run_ms t 2000;
  for node = 0 to 3 do
    let faulty = Rrp.faulty (rrp_of t node) in
    Alcotest.(check bool) (Printf.sprintf "node %d marked n''" node) true faulty.(1);
    Alcotest.(check bool) (Printf.sprintf "node %d kept n'" node) false faulty.(0)
  done;
  let reports = Cluster.fault_reports t.cluster in
  Alcotest.(check int) "one report per node" 4 (List.length reports);
  List.iter
    (fun (_, r) ->
      match r.Fault_report.evidence with
      | Fault_report.Token_timeouts n ->
        Alcotest.(check bool) "threshold-sized evidence" true (n >= 10)
      | _ -> Alcotest.fail "expected token-timeout evidence")
    reports

(* After the fault is marked, sending stops on that network. *)
let test_marked_network_not_used_for_sending () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 300;
  Cluster.fail_network t.cluster 1;
  run_ms t 1500;
  let sent_before = Rrp.data_sent (rrp_of t 0) ~net:1 in
  run_ms t 500;
  Alcotest.(check int) "no further sends on faulty net" sent_before
    (Rrp.data_sent (rrp_of t 0) ~net:1)

(* ...but reception is still accepted (Sec. 3): heal the fabric without
   telling the nodes; traffic arriving on the still-marked network is
   processed. *)
let test_marked_network_still_receives () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 300;
  Cluster.fail_network t.cluster 0;
  run_ms t 1500;
  (* All nodes have marked n'. Now the switch silently recovers, and we
     kill n'' instead: nodes still send only on n'' (marked n' faulty)...
     nothing flows. But receptions on n' must still be accepted, so
     un-mark just node 1 to make it the only sender on n'. *)
  Totem_net.Fault.heal (Totem_net.Fabric.fault (Cluster.fabric t.cluster) 0);
  Rrp.clear_fault (rrp_of t 1) ~net:0;
  let before = Cluster.delivered_at t.cluster 2 in
  run_ms t 500;
  Alcotest.(check bool) "node 2 still delivers (receives via marked n')" true
    (Cluster.delivered_at t.cluster 2 > before)

(* A6: sporadic loss alone must never condemn a network. *)
let test_a6_sporadic_loss_no_false_alarm () =
  let t = start ~seed:5 () in
  Cluster.set_network_loss t.cluster 0 0.01;
  Cluster.set_network_loss t.cluster 1 0.01;
  Workload.saturate t.cluster ~size:1024;
  run_ms t 10_000;
  Alcotest.(check int) "no fault reports" 0
    (List.length (Cluster.fault_reports t.cluster));
  Array.iteri
    (fun i f -> if f then Alcotest.failf "network %d wrongly marked" i)
    (Rrp.faulty (rrp_of t 0))

(* The last non-faulty network is never marked: liveness. *)
let test_last_network_guard () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 300;
  Cluster.fail_network t.cluster 0;
  Cluster.fail_network t.cluster 1;
  run_ms t 3000;
  let faulty = Rrp.faulty (rrp_of t 0) in
  Alcotest.(check bool) "at most one network marked" true
    (not (faulty.(0) && faulty.(1)))

(* Three networks: losing two is masked. *)
let test_three_networks_two_failures () =
  let t = start ~num_nets:3 () in
  submit_n t ~node:1 ~size:500 10;
  run_ms t 300;
  Cluster.fail_network t.cluster 0;
  Cluster.fail_network t.cluster 2;
  submit_n t ~node:2 ~size:500 20;
  run_ms t 3000;
  check_delivered_everything t ~expected:30;
  Alcotest.(check int) "single ring throughout" 1
    (Srp.stats (srp_of t 0)).Srp.ring_changes

(* The problem counter decays (A6 mechanism, "not shown in Fig. 2"). *)
let test_problem_counter_decay () =
  let rrp_config =
    {
      Totem_rrp.Rrp_config.default with
      Totem_rrp.Rrp_config.active_decay_interval = Totem_engine.Vtime.ms 50;
      active_problem_threshold = 1000;
    }
  in
  let t = start ~rrp:rrp_config () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 200;
  (* A short outage bumps the counters but stays under the threshold. *)
  Cluster.fail_network t.cluster 1;
  run_ms t 100;
  Cluster.heal_network t.cluster 1;
  let active = Option.get (Rrp.as_active (rrp_of t 0)) in
  let counter = Totem_rrp.Active.problem_counter active ~net:1 in
  Alcotest.(check bool) "counter accumulated" true (counter > 0);
  run_ms t ((counter * 50) + 500);
  Alcotest.(check int) "counter decayed to zero" 0
    (Totem_rrp.Active.problem_counter active ~net:1)

let tests =
  [
    Alcotest.test_case "messages and tokens sent on all networks" `Quick
      test_sends_on_all_networks;
    Alcotest.test_case "A1: exactly-once delivery" `Quick test_a1_single_delivery;
    Alcotest.test_case "A2: loss on one network, no retransmission" `Quick
      test_a2_no_spurious_retransmission;
    Alcotest.test_case "A4: progress through total network failure" `Quick
      test_a4_progress_through_total_failure;
    Alcotest.test_case "A5: permanent failure detected everywhere" `Quick
      test_a5_detection;
    Alcotest.test_case "faulty network not used for sending" `Quick
      test_marked_network_not_used_for_sending;
    Alcotest.test_case "faulty network still receives (Sec. 3)" `Quick
      test_marked_network_still_receives;
    Alcotest.test_case "A6: sporadic loss never condemns" `Slow
      test_a6_sporadic_loss_no_false_alarm;
    Alcotest.test_case "last non-faulty network never marked" `Quick
      test_last_network_guard;
    Alcotest.test_case "N=3: two failures masked" `Quick
      test_three_networks_two_failures;
    Alcotest.test_case "problem counter decays" `Quick test_problem_counter_decay;
  ]
