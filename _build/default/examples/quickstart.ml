(* Quickstart: a four-node cluster on two passively replicated Ethernets.

   Each node broadcasts a few totally ordered messages; we show that all
   nodes deliver exactly the same sequence, then print the throughput of
   a one-second saturating run — the paper's basic operating mode. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Metrics = Totem_cluster.Metrics
module Vtime = Totem_engine.Vtime
module Message = Totem_srp.Message

let () =
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style:Totem_rrp.Style.Passive ()
  in
  let cluster = Cluster.create config in

  (* Record the delivery order seen by every node. *)
  let orders = Array.make 4 [] in
  Cluster.on_deliver cluster (fun node m ->
      orders.(node) <- (m.Message.origin, m.Message.app_seq) :: orders.(node));

  Cluster.start cluster;

  (* Every node submits five 512-byte messages right away. *)
  for node = 0 to 3 do
    for _ = 1 to 5 do
      Totem_srp.Srp.submit (Cluster.srp (Cluster.node cluster node)) ~size:512 ()
    done
  done;

  Cluster.run_for cluster (Vtime.ms 200);

  let show order =
    String.concat " "
      (List.rev_map (fun (o, s) -> Printf.sprintf "N%d#%d" o s) order)
  in
  Format.printf "Delivery order at each node:@.";
  Array.iteri
    (fun node order -> Format.printf "  node %d: %s@." node (show order))
    orders;
  let all_equal = Array.for_all (fun o -> o = orders.(0)) orders in
  Format.printf "Total order identical at all nodes: %b@." all_equal;
  assert all_equal;

  (* Saturating throughput, as in the paper's experiments. *)
  Workload.saturate cluster ~size:1024;
  let tp =
    Metrics.measure_throughput cluster ~warmup:(Vtime.ms 200)
      ~duration:(Vtime.sec 1)
  in
  Format.printf
    "Saturated with 1 Kbyte messages (passive replication, 2 networks):@.";
  Format.printf "  %.0f msgs/sec, %.0f Kbytes/sec@." tp.Metrics.msgs_per_sec
    tp.Metrics.kbytes_per_sec
