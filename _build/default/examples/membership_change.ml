(* Node faults still work as in the Totem SRP: membership changes.

   The RRP masks *network* faults without membership changes, but a
   *node* crash must still reconfigure the ring. Here a five-node
   cluster loses network n' at 0.5s (masked, no membership change) and
   node 4 crashes at 1.5s (detected by token loss; the survivors form a
   new ring). This demonstrates the fault-model separation of Sec. 3. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Scenario = Totem_cluster.Scenario
module Srp = Totem_srp.Srp
module Vtime = Totem_engine.Vtime

let () =
  let config =
    Config.make ~num_nodes:5 ~num_nets:2 ~style:Totem_rrp.Style.Active ()
  in
  let cluster = Cluster.create config in

  Cluster.on_ring_change cluster (fun node ~ring_id ~members ->
      if node = 0 then
        Format.printf "  ring %d installed: members [%s]@." ring_id
          (String.concat ";"
             (Array.to_list (Array.map string_of_int members))));
  Cluster.on_fault_report cluster (fun node report ->
      if node = 0 then
        Format.printf "  ALARM at node 0: %a@." Totem_rrp.Fault_report.pp report);

  Cluster.start cluster;
  Workload.saturate cluster ~size:512;

  Scenario.schedule cluster
    [
      (Vtime.ms 500, Scenario.Fail_network 0);
      (Vtime.ms 1500, Scenario.Crash_node 4);
    ];

  Format.printf "t=0: five nodes, two networks, active replication@.";
  Cluster.run_until cluster (Vtime.ms 1400);
  let srp0 = Cluster.srp (Cluster.node cluster 0) in
  Format.printf "t=1.4s: after the network fault, ring is %d with %d members@."
    (Srp.current_ring_id srp0)
    (Array.length (Srp.members srp0));
  assert (Array.length (Srp.members srp0) = 5);

  Cluster.run_until cluster (Vtime.sec 3);
  Format.printf "t=3.0s: after node 4 crashed, ring is %d with %d members@."
    (Srp.current_ring_id srp0)
    (Array.length (Srp.members srp0));
  assert (Array.length (Srp.members srp0) = 4);
  assert (Array.for_all (fun n -> n <> 4) (Srp.members srp0));

  (* The surviving ring still makes progress. *)
  let before = Cluster.delivered_at cluster 0 in
  Cluster.run_for cluster (Vtime.sec 1);
  let after = Cluster.delivered_at cluster 0 in
  Format.printf "surviving ring throughput: %d msgs/sec@." (after - before);
  assert (after - before > 1000);
  Format.printf
    "Network fault masked without reconfiguration; node fault reconfigured the ring.@."
