(* Active-passive replication (Sec. 7) — the style the paper describes
   but could not measure, "because it requires a minimum of three
   networks and we had only two networks available to us". The simulated
   fabric has no such constraint.

   Three networks, K = 2 copies per send. First one network dies
   (masked: the second copy of everything still arrives — no
   retransmission delay, no membership change). Then a second network
   dies, leaving one: the system degrades to single-copy operation but
   keeps running, exactly the "operational as long as a single network
   is operational" guarantee. A final network report shows what the
   administrator would see. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Scenario = Totem_cluster.Scenario
module Net_report = Totem_cluster.Net_report
module Srp = Totem_srp.Srp
module Vtime = Totem_engine.Vtime

let () =
  let config =
    Config.make ~num_nodes:4 ~num_nets:3 ~style:(Totem_rrp.Style.Active_passive 2) ()
  in
  let cluster = Cluster.create config in
  Cluster.on_fault_report cluster (fun node report ->
      if node = 0 then
        Format.printf "  ALARM: %a@." Totem_rrp.Fault_report.pp report);
  Cluster.start cluster;
  Workload.saturate cluster ~size:1024;

  let rate_over d =
    let b = Cluster.delivered_at cluster 0 in
    Cluster.run_for cluster d;
    float_of_int (Cluster.delivered_at cluster 0 - b) /. Vtime.to_float_sec d
  in
  let retrans_requested () =
    let total = ref 0 in
    Cluster.iter_nodes cluster (fun n ->
        total := !total + (Srp.stats (Cluster.srp n)).Srp.retransmissions_requested);
    !total
  in

  Format.printf "Three networks, K=2 copies of every message and token.@.";
  Format.printf "phase 1 (all healthy):   %8.0f msgs/sec@." (rate_over (Vtime.sec 1));

  Scenario.apply cluster (Scenario.Fail_network 0);
  let before = retrans_requested () in
  Format.printf "phase 2 (n' dead):       %8.0f msgs/sec@." (rate_over (Vtime.sec 2));
  Format.printf "  retransmission requests caused by losing n': %d (K-1 losses are masked)@."
    (retrans_requested () - before);

  Scenario.apply cluster (Scenario.Fail_network 1);
  Format.printf "phase 3 (n' and n'' dead): %6.0f msgs/sec@." (rate_over (Vtime.sec 2));

  let ring_ok =
    Array.length (Srp.members (Cluster.srp (Cluster.node cluster 0))) = 4
  in
  Format.printf "ring intact with 4 members through both failures: %b@." ring_ok;
  assert ring_ok;

  Format.printf "@.Network report:@.";
  Net_report.print cluster
