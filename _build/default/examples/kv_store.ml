(* A replicated key-value store over the Totem RRP, using both delivery
   guarantees:

     - reads and ordinary writes ride on *agreed* delivery (fast:
       delivered as soon as total order is established);
     - "durable" writes use *safe* delivery — the write is applied only
       once the token has proven every replica holds it, so no replica
       can apply it and then partition away with the others never having
       seen it.

   The run measures the latency cost of the stronger guarantee, crashes
   a replica, reboots it, and shows that it is re-admitted and converges
   to the same store contents. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Scenario = Totem_cluster.Scenario
module Srp = Totem_srp.Srp
module Message = Totem_srp.Message
module Vtime = Totem_engine.Vtime
module Stats = Totem_engine.Stats

type Message.data += Put of { key : string; value : int; at : Vtime.t }

let replicas = 4

type store = { table : (string, int) Hashtbl.t; mutable applied : int }

let () =
  let config =
    Config.make ~num_nodes:replicas ~num_nets:2 ~style:Totem_rrp.Style.Passive ()
  in
  let cluster = Cluster.create config in
  let stores =
    Array.init replicas (fun _ -> { table = Hashtbl.create 64; applied = 0 })
  in
  let agreed_lat = Stats.Summary.create () and safe_lat = Stats.Summary.create () in
  Cluster.on_deliver cluster (fun node m ->
      match m.Message.data with
      | Put { key; value; at } ->
        let s = stores.(node) in
        Hashtbl.replace s.table key value;
        s.applied <- s.applied + 1;
        if node = 0 then
          Stats.Summary.observe
            (if m.Message.safe then safe_lat else agreed_lat)
            (Vtime.to_float_ms (Vtime.sub (Cluster.now cluster) at))
      | _ -> ());
  Cluster.start cluster;

  let put ~node ~safe key value =
    Srp.submit (Cluster.srp (Cluster.node cluster node)) ~size:64 ~safe
      ~data:(Put { key; value; at = Cluster.now cluster })
      ()
  in

  (* Phase 1: mixed agreed and safe writes from two frontends. *)
  for i = 1 to 200 do
    put ~node:(i mod 2) ~safe:(i mod 4 = 0) (Printf.sprintf "key%d" (i mod 32)) i;
    Cluster.run_for cluster (Vtime.ms 2)
  done;
  Cluster.run_for cluster (Vtime.ms 200);
  Format.printf "Write latency (node 0's view):@.";
  Format.printf "  agreed: mean %.2f ms over %d writes@."
    (Stats.Summary.mean agreed_lat)
    (Stats.Summary.count agreed_lat);
  Format.printf "  safe:   mean %.2f ms over %d writes (stability costs a rotation)@."
    (Stats.Summary.mean safe_lat) (Stats.Summary.count safe_lat);
  assert (Stats.Summary.mean safe_lat > Stats.Summary.mean agreed_lat);

  (* Phase 2: crash replica 2 mid-stream, keep writing, reboot it. *)
  Scenario.apply cluster (Scenario.Crash_node 2);
  for i = 201 to 300 do
    put ~node:0 ~safe:(i mod 4 = 0) (Printf.sprintf "key%d" (i mod 32)) i;
    Cluster.run_for cluster (Vtime.ms 2)
  done;
  Cluster.run_for cluster (Vtime.sec 1);
  Scenario.apply cluster (Scenario.Recover_node 2);
  Cluster.run_for cluster (Vtime.sec 2);

  (* Phase 3: writes after re-admission reach the rebooted replica. *)
  for i = 301 to 340 do
    put ~node:1 ~safe:false (Printf.sprintf "key%d" (i mod 32)) i;
    Cluster.run_for cluster (Vtime.ms 2)
  done;
  Cluster.run_for cluster (Vtime.sec 1);

  let dump s =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.table [])
  in
  let reference = dump stores.(0) in
  Format.printf "Store sizes:";
  Array.iter (fun s -> Format.printf " %d" (Hashtbl.length s.table)) stores;
  Format.printf "@.";
  let converged (* replicas 0,1,3 saw everything; 2 rebooted and saw phase 3 *) =
    dump stores.(1) = reference && dump stores.(3) = reference
  in
  Format.printf "Replicas 0, 1, 3 identical: %b@." converged;
  assert converged;
  (* The rebooted replica holds exactly the keys written since it came
     back — stale state was wiped with the reboot (a production system
     would add state transfer on top; ordered delivery makes that easy). *)
  let fresh_ok =
    List.for_all
      (fun (k, v) -> List.assoc_opt k reference = Some v)
      (dump stores.(2))
  in
  Format.printf "Rebooted replica consistent with the primaries: %b@." fresh_ok;
  assert fresh_ok;
  Format.printf "Done.@."
