examples/styles_compare.ml: List Printf Totem_cluster Totem_engine Totem_rrp
