examples/rsm_bank.ml: Array Format List Map Option Printf String Totem_cluster Totem_engine Totem_rrp Totem_rsm
