examples/replicated_ledger.mli:
