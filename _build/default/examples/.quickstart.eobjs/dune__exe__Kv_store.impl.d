examples/kv_store.ml: Array Format Hashtbl List Printf Totem_cluster Totem_engine Totem_rrp Totem_srp
