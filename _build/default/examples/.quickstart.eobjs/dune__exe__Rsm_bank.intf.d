examples/rsm_bank.mli:
