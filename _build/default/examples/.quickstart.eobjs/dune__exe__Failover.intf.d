examples/failover.mli:
