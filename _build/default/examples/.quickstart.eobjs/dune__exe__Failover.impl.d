examples/failover.ml: Format List Totem_cluster Totem_engine Totem_rrp Totem_srp
