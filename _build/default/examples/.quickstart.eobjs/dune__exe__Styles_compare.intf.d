examples/styles_compare.mli:
