examples/replicated_ledger.ml: Array Format String Totem_cluster Totem_engine Totem_rrp Totem_srp
