examples/quickstart.mli:
