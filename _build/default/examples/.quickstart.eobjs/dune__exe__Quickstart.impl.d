examples/quickstart.ml: Array Format List Printf String Totem_cluster Totem_engine Totem_rrp Totem_srp
