examples/active_passive.ml: Array Format Totem_cluster Totem_engine Totem_rrp Totem_srp
