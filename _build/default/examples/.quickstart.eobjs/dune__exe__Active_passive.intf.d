examples/active_passive.mli:
