(* A replicated bank ledger on top of the Totem RRP.

   The paper motivates the protocol with back-end servers for financial
   applications (Sec. 1). Here four replicas apply transfer commands in
   Totem's agreed total order, while network n'' drops 20% of its frames
   and later fails for node 2's receive path entirely. Because every
   replica applies the same commands in the same order, all replicas end
   with identical balances — through all the faults. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Scenario = Totem_cluster.Scenario
module Srp = Totem_srp.Srp
module Message = Totem_srp.Message
module Vtime = Totem_engine.Vtime
module Rng = Totem_engine.Rng

type Message.data += Transfer of { src : int; dst : int; amount : int }

let accounts = 8
let replicas = 4

(* One replica's state machine: account balances, updated only by
   delivered (totally ordered) commands. *)
type replica = { balances : int array; mutable applied : int }

let apply replica = function
  | Transfer { src; dst; amount } ->
    replica.balances.(src) <- replica.balances.(src) - amount;
    replica.balances.(dst) <- replica.balances.(dst) + amount;
    replica.applied <- replica.applied + 1
  | _ -> ()

let () =
  let config =
    Config.make ~num_nodes:replicas ~num_nets:2 ~style:Totem_rrp.Style.Passive ()
  in
  let cluster = Cluster.create config in
  let state = Array.init replicas (fun _ -> { balances = Array.make accounts 1000; applied = 0 }) in
  Cluster.on_deliver cluster (fun node m -> apply state.(node) m.Message.data);

  Cluster.start cluster;

  (* Node 0 and node 3 both issue random transfers. *)
  let rng = Rng.create ~seed:7 in
  let issue node n =
    for _ = 1 to n do
      let src = Rng.int rng accounts and dst = Rng.int rng accounts in
      let amount = 1 + Rng.int rng 100 in
      Srp.submit (Cluster.srp (Cluster.node cluster node)) ~size:64
        ~data:(Transfer { src; dst; amount }) ()
    done
  in

  (* Fault timeline: 20% loss on n'' from 0.2s, then node 2's receive
     path on n'' dies at 0.6s. *)
  Scenario.schedule cluster
    [
      (Vtime.ms 200, Scenario.Set_loss (1, 0.2));
      (Vtime.ms 600, Scenario.Block_recv (2, 1));
    ];

  let rec rounds n =
    if n > 0 then begin
      issue 0 50;
      issue 3 50;
      Cluster.run_for cluster (Vtime.ms 300);
      rounds (n - 1)
    end
  in
  rounds 10;
  Cluster.run_for cluster (Vtime.sec 1);

  Format.printf "Commands applied per replica:";
  Array.iter (fun r -> Format.printf " %d" r.applied) state;
  Format.printf "@.";
  Format.printf "Balances per replica:@.";
  Array.iteri
    (fun i r ->
      Format.printf "  replica %d: [%s]  sum=%d@." i
        (String.concat ";" (Array.to_list (Array.map string_of_int r.balances)))
        (Array.fold_left ( + ) 0 r.balances))
    state;
  let identical =
    Array.for_all (fun r -> r.balances = state.(0).balances) state
  in
  Format.printf "All replicas identical: %b@." identical;
  assert identical;
  assert (state.(0).applied = 1000);
  Format.printf
    "1000 transfers applied consistently despite 20%% loss and a dead receive path.@."
