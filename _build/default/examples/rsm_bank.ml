(* The replicated-state-machine library end to end: a bank with pure
   Map state, replicated over the Totem RRP, surviving a network
   failure, a replica crash, and a reboot with ordered-broadcast state
   transfer — in about fifty lines of application code. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Scenario = Totem_cluster.Scenario
module Rsm = Totem_rsm.Rsm
module Vtime = Totem_engine.Vtime
module SMap = Map.Make (String)

type cmd =
  | Open of string
  | Deposit of string * int
  | Transfer of string * string * int

let apply accounts = function
  | Open who -> SMap.add who 0 accounts
  | Deposit (who, amount) ->
    SMap.update who (Option.map (( + ) amount)) accounts
  | Transfer (src, dst, amount) -> (
    match (SMap.find_opt src accounts, SMap.find_opt dst accounts) with
    | Some s, Some _ when s >= amount ->
      SMap.update dst (Option.map (( + ) amount))
        (SMap.add src (s - amount) accounts)
    | _ -> accounts (* rejected identically at every replica *))

let spec =
  {
    Rsm.initial = SMap.empty;
    apply;
    cmd_size = (fun _ -> 48);
    state_size = (fun m -> 64 * SMap.cardinal m);
  }

let () =
  let cluster = Cluster.create (Config.make ~num_nodes:4 ~style:Totem_rrp.Style.Passive ()) in
  let g = Rsm.group spec in
  let reps = Array.init 4 (fun node -> Rsm.attach cluster ~group:g ~node) in
  Cluster.start cluster;

  Rsm.submit reps.(0) (Open "alice");
  Rsm.submit reps.(1) (Open "bob");
  Rsm.submit reps.(0) (Deposit ("alice", 100));
  Cluster.run_for cluster (Vtime.ms 100);

  (* Network n' dies: nobody notices at this layer. *)
  Scenario.apply cluster (Scenario.Fail_network 0);
  Rsm.submit reps.(2) (Transfer ("alice", "bob", 30));
  Cluster.run_for cluster (Vtime.sec 1);

  (* Replica 3 crashes and reboots; state transfer brings it level. *)
  Scenario.apply cluster (Scenario.Crash_node 3);
  Rsm.submit reps.(0) (Deposit ("bob", 5));
  Cluster.run_for cluster (Vtime.sec 1);
  Scenario.apply cluster (Scenario.Recover_node 3);
  Cluster.run_for cluster (Vtime.sec 1);
  Rsm.request_state_transfer reps.(3);
  Cluster.run_for cluster (Vtime.sec 2);

  Rsm.submit reps.(3) (Transfer ("bob", "alice", 1));
  Cluster.run_for cluster (Vtime.sec 1);

  let show r =
    String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
         (SMap.bindings (Rsm.state r)))
  in
  Array.iteri (fun i r -> Format.printf "replica %d: %s@." i (show r)) reps;
  let reference = SMap.bindings (Rsm.state reps.(0)) in
  Array.iter (fun r -> assert (SMap.bindings (Rsm.state r) = reference)) reps;
  assert (reference = [ ("alice", 71); ("bob", 34) ]);
  Format.printf
    "All replicas agree through a network failure, a crash and a state transfer.@."
