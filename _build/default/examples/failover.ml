(* Failover: the paper's core claim, live.

   A four-node cluster runs on two networks with active replication. At
   t = 1s network n' suffers a total failure (its switch dies). The
   message flow never stops, no membership change occurs, every node
   raises a fault report for the administrator, and after the switch is
   replaced at t = 3s the administrator clears the fault and both
   networks carry traffic again. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Scenario = Totem_cluster.Scenario
module Metrics = Totem_cluster.Metrics
module Srp = Totem_srp.Srp
module Vtime = Totem_engine.Vtime

let () =
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style:Totem_rrp.Style.Active ()
  in
  let cluster = Cluster.create config in

  Cluster.on_fault_report cluster (fun node report ->
      Format.printf "  ALARM %a (raised by node %d)@."
        Totem_rrp.Fault_report.pp report node);
  let ring_changes = ref 0 in
  Cluster.on_ring_change cluster (fun _ ~ring_id:_ ~members:_ ->
      incr ring_changes);

  Cluster.start cluster;
  Workload.saturate cluster ~size:1024;
  let initial_rings = !ring_changes in

  let rate_over cluster d =
    let before = Cluster.delivered_at cluster 0 in
    Cluster.run_for cluster d;
    let after = Cluster.delivered_at cluster 0 in
    float_of_int (after - before) /. Vtime.to_float_sec d
  in

  Format.printf "Phase 1: both networks healthy@.";
  let r1 = rate_over cluster (Vtime.sec 1) in
  Format.printf "  throughput: %.0f msgs/sec@." r1;

  Format.printf "Phase 2: network n' fails completely@.";
  Scenario.apply cluster (Scenario.Fail_network 0);
  let r2 = rate_over cluster (Vtime.sec 2) in
  Format.printf "  throughput while n' is dead: %.0f msgs/sec@." r2;

  Format.printf "Phase 3: administrator replaces the switch and clears the fault@.";
  Scenario.apply cluster (Scenario.Heal_network 0);
  let r3 = rate_over cluster (Vtime.sec 1) in
  Format.printf "  throughput after repair: %.0f msgs/sec@." r3;

  let reports = Cluster.fault_reports cluster in
  Format.printf "Fault reports issued: %d (one per node expected)@."
    (List.length reports);
  Format.printf "Membership changes during the whole run: %d@."
    (!ring_changes - initial_rings);
  assert (r2 > 0.5 *. r1);
  assert (List.length reports = 4);
  assert (!ring_changes - initial_rings = 0);
  Format.printf
    "The network failure was masked: no membership change, service continued.@."
