(* The benchmark harness: regenerates every figure of the paper's
   evaluation (Sec. 8) plus the headline claims, runs the ablation
   sweeps called out in DESIGN.md, and micro-benchmarks the
   protocol-critical data structures with Bechamel.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig6         # one figure
     dune exec bench/main.exe -- fig6 fig8    # several
     dune exec bench/main.exe -- --quick all  # shorter simulations
     dune exec bench/main.exe -- --check all  # assert the paper's shape
     dune exec bench/main.exe -- --jobs 8 all # sweep points across domains
     dune exec bench/main.exe -- --sim-domains 4 fig6  # parallel core per point
     dune exec bench/main.exe -- --json out.json all  # machine-readable results

   Every sweep point builds its own self-contained Cluster (own
   simulator, own split RNG streams), so points are independent:
   [--jobs N] fans them out across OCaml 5 domains and produces
   bitwise-identical figures to a sequential run. [--sim-domains N]
   instead parallelizes inside each cluster (the conservative-lookahead
   simulator core); figures are bitwise-identical for every N >= 1.

   Targets: fig6 fig7 fig8 fig9 wire parallel-d1 parallel-d8
   parallel-smoke perf-smoke bench-gate soak soak-smoke headline claims
   latency ablations micro all (all = everything except bench-gate,
   the machine-sensitive CI gate) *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Metrics = Totem_cluster.Metrics
module Report = Totem_cluster.Report
module Style = Totem_rrp.Style
module Vtime = Totem_engine.Vtime
module Stats = Totem_engine.Stats
module Const = Totem_srp.Const

(* --- measurement -------------------------------------------------- *)

let quick = ref false
let check = ref false
let csv_dir = ref None
let jobs = ref 1
let sim_domains = ref 0
let window_batch = ref true
let max_horizon_factor = ref 8
let json_path = ref None
let failures = ref []

(* Simulator events popped by every cluster this process ran; atomics
   because sweep points may execute on worker domains. The window
   counters aggregate the parallel core's barrier amortization
   (Exchange.stats) across every partitioned cluster of a target. *)
let events_total = Atomic.make 0
let windows_run_total = Atomic.make 0
let windows_batched_total = Atomic.make 0
let windows_widened_total = Atomic.make 0

(* Per-cluster accounting at the end of a point: events, the exchange's
   window stats, and the worker-pool join (a no-op in classic mode). *)
let note_cluster cluster =
  ignore (Atomic.fetch_and_add events_total (Metrics.events_processed cluster));
  (match Cluster.exchange cluster with
  | Some ex ->
    let st = Totem_engine.Exchange.stats ex in
    ignore
      (Atomic.fetch_and_add windows_run_total
         st.Totem_engine.Exchange.windows_run);
    ignore
      (Atomic.fetch_and_add windows_batched_total
         st.Totem_engine.Exchange.windows_batched);
    ignore
      (Atomic.fetch_and_add windows_widened_total
         st.Totem_engine.Exchange.windows_widened)
  | None -> ());
  Cluster.shutdown cluster

let duration () = if !quick then Vtime.ms 400 else Vtime.sec 1
let warmup () = Vtime.ms 300

let expect name cond detail =
  if !check then
    if cond then Format.printf "  CHECK ok: %s@." name
    else begin
      Format.printf "  CHECK FAILED: %s (%s)@." name detail;
      failures := name :: !failures
    end

(* Run [f items.(i)] for every i, fanning out across [jobs] domains.
   Each item is independent and deterministic, and results land by
   index, so the output — and every figure computed from it — is
   bitwise-identical to the sequential run. A point that raises on a
   worker domain fails the bench run with its own exception and
   backtrace (Totem_engine.Parallel), not an opaque join error. *)
let parallel_map ~jobs f items = Totem_engine.Parallel.map ~jobs f items

(* Every point carries its protocol telemetry out of the run: rotation
   timing, retransmission counters, and a problemCounter trajectory
   sampled every 50 ms of virtual time. The sampler is installed
   unconditionally (it is read-only) so figures are bitwise identical
   whether or not anyone looks at the telemetry. *)
let run_point ?(const = Const.default) ?(wire = false) ?sim_domains:sd
    ?window_batch:wb ~num_nodes ~num_nets ~style ~size () =
  let sim_domains = Option.value sd ~default:!sim_domains in
  let window_batch = Option.value wb ~default:!window_batch in
  let config =
    Config.make ~num_nodes ~num_nets ~style ~const ~wire_bytes:wire ~sim_domains
      ~window_batch ~max_horizon_factor:!max_horizon_factor ()
  in
  let cluster = Cluster.create config in
  let sampler = Metrics.install_fault_sampler cluster ~interval:(Vtime.ms 50) in
  Cluster.start cluster;
  Workload.saturate cluster ~size;
  let tp =
    Metrics.measure_throughput cluster ~warmup:(warmup ()) ~duration:(duration ())
  in
  let util = Metrics.network_utilisation cluster ~net:0 in
  let pt = Metrics.collect_point_telemetry ~sampler cluster in
  note_cluster cluster;
  (tp, util, pt)

let tp_of_point (tp, _, _) = tp

let sizes = [| 100; 200; 400; 700; 1024; 1400; 2048; 4096; 8192; 10240 |]

let styles =
  [
    ("no repl", Style.No_replication);
    ("active", Style.Active);
    ("passive", Style.Passive);
  ]

(* One sweep serves both the msgs/sec figure and the KB/sec figure.
   The style x size grid is the unit of parallelism. *)
let sweep ?(wire = false) ?sim_domains ~num_nodes () =
  let tasks =
    Array.concat
      (List.map (fun (_, style) -> Array.map (fun size -> (style, size)) sizes)
         styles)
  in
  let pts =
    parallel_map ~jobs:!jobs
      (fun (style, size) ->
        let tp, _, pt =
          run_point ~wire ?sim_domains ~num_nodes ~num_nets:2 ~style ~size ()
        in
        (tp, pt))
      tasks
  in
  List.mapi
    (fun si (name, style) ->
      (name, style, Array.sub pts (si * Array.length sizes) (Array.length sizes)))
    styles

let cache :
    ( int * bool * int,
      (string * Style.t * (Metrics.throughput * Metrics.point_telemetry) array)
      list )
    Hashtbl.t =
  Hashtbl.create 4

let sweep_cached ?(wire = false) ?sim_domains:sd ~num_nodes () =
  let sim_domains = Option.value sd ~default:!sim_domains in
  match Hashtbl.find_opt cache (num_nodes, wire, sim_domains) with
  | Some s -> s
  | None ->
    let s = sweep ~wire ~sim_domains ~num_nodes () in
    Hashtbl.replace cache (num_nodes, wire, sim_domains) s;
    s

let rate_series s =
  List.map
    (fun (name, _, pts) ->
      (name, Array.map (fun (p, _) -> p.Metrics.msgs_per_sec) pts))
    s

let bw_series s =
  List.map
    (fun (name, _, pts) ->
      (name, Array.map (fun (p, _) -> p.Metrics.kbytes_per_sec) pts))
    s

let find_series s name = List.assoc name s

let idx_of_size size =
  let found = ref (-1) in
  Array.iteri (fun i s -> if s = size then found := i) sizes;
  !found

let shape_checks ~num_nodes s =
  let rates = rate_series s and bws = bw_series s in
  let at series name size = (find_series series name).(idx_of_size size) in
  let none_1k = at rates "no repl" 1024
  and act_1k = at rates "active" 1024
  and pas_1k = at rates "passive" 1024 in
  expect
    (Printf.sprintf "%d nodes: active below unreplicated at 1KB" num_nodes)
    (act_1k < none_1k)
    (Printf.sprintf "active=%.0f none=%.0f" act_1k none_1k);
  expect
    (Printf.sprintf "%d nodes: passive above unreplicated at 1KB" num_nodes)
    (pas_1k > none_1k)
    (Printf.sprintf "passive=%.0f none=%.0f" pas_1k none_1k);
  expect
    (Printf.sprintf "%d nodes: active reduction O(1000-1500) msgs/s" num_nodes)
    (none_1k -. act_1k >= 500.0 && none_1k -. act_1k <= 3000.0)
    (Printf.sprintf "gap=%.0f" (none_1k -. act_1k));
  let gain_kb = at bws "passive" 1024 -. at bws "no repl" 1024 in
  expect
    (Printf.sprintf "%d nodes: passive gains O(2000-4000) KB/s" num_nodes)
    (gain_kb >= 1000.0 && gain_kb <= 6000.0)
    (Printf.sprintf "gain=%.0f KB/s" gain_kb);
  (* Packing peaks: frame-fill efficiency peaks at 700 and 1400 bytes
     (Sec. 8). *)
  let bw_none x = at bws "no repl" x in
  expect
    (Printf.sprintf "%d nodes: 700B peak" num_nodes)
    (bw_none 700 > bw_none 400)
    (Printf.sprintf "700B=%.0f 400B=%.0f" (bw_none 700) (bw_none 400));
  expect
    (Printf.sprintf "%d nodes: 1400B peak" num_nodes)
    (bw_none 1400 > bw_none 1024)
    (Printf.sprintf "1400B=%.0f 1024B=%.0f" (bw_none 1400) (bw_none 1024));
  (* Passive exceeds one Ethernet but does not approach twice the
     unreplicated rate (Sec. 8). *)
  let max_ratio =
    Array.fold_left max 0.0
      (Array.mapi
         (fun i _ ->
           Report.ratio
             (find_series rates "passive").(i)
             (find_series rates "no repl").(i))
         sizes)
  in
  expect
    (Printf.sprintf "%d nodes: passive does not approach 2x" num_nodes)
    (max_ratio < 1.9)
    (Printf.sprintf "max ratio %.2f" max_ratio)

(* Figure sweeps executed so far, for the JSON emitter. *)
let fig_results :
    ( string,
      (string * (Metrics.throughput * Metrics.point_telemetry) array) list )
    Hashtbl.t =
  Hashtbl.create 4

let fig ~n ~num_nodes ~bandwidth () =
  let s = sweep_cached ~num_nodes () in
  Hashtbl.replace fig_results
    (Printf.sprintf "fig%d" n)
    (List.map (fun (name, _, pts) -> (name, pts)) s);
  let title =
    Printf.sprintf "Figure %d: transmission rate (%s) vs message length, %d nodes"
      n
      (if bandwidth then "Kbytes/sec" else "msgs/sec")
      num_nodes
  in
  let series = if bandwidth then bw_series s else rate_series s in
  Report.print_series ~title ~x_label:"bytes" ~xs:sizes series;
  Report.ascii_plot
    ~title:
      (if bandwidth then "          (Kbytes/sec, linear)"
       else "          (msgs/sec, log scale)")
    ~log_y:(not bandwidth) ~xs:sizes series;
  (match !csv_dir with
  | Some dir ->
    let path = Filename.concat dir (Printf.sprintf "fig%d.csv" n) in
    let oc = open_out path in
    output_string oc (Report.csv_of_series ~x_label:"bytes" ~xs:sizes ~series);
    close_out oc;
    Format.printf "  (wrote %s)@." path
  | None -> ());
  if not bandwidth then shape_checks ~num_nodes s

let fig6 () = fig ~n:6 ~num_nodes:4 ~bandwidth:false ()
let fig7 () = fig ~n:7 ~num_nodes:6 ~bandwidth:false ()
let fig8 () = fig ~n:8 ~num_nodes:4 ~bandwidth:true ()
let fig9 () = fig ~n:9 ~num_nodes:6 ~bandwidth:true ()

(* --- wire: byte-faithful mode, the encode+CRC overhead --------------- *)

(* The fig6 sweep re-run in byte-wire mode: every payload serialized
   through the binary codec with a CRC-32 trailer at the sending NIC,
   CRC-checked and totally decoded at the receiver. Serialization is
   host CPU work, not simulated time, so the simulated figures must be
   bitwise the reference sweep — the overhead is this target's
   wall-clock (events_per_sec) against fig6's in the JSON. *)
let wire () =
  let s = sweep_cached ~wire:true ~num_nodes:4 () in
  Hashtbl.replace fig_results "wire"
    (List.map (fun (name, _, pts) -> (name, pts)) s);
  Report.print_series
    ~title:
      "Byte-wire mode: transmission rate (msgs/sec) vs message length, 4 nodes"
    ~x_label:"bytes" ~xs:sizes (rate_series s);
  let reference = sweep_cached ~num_nodes:4 () in
  let identical =
    List.for_all2
      (fun (_, _, pa) (_, _, pb) ->
        Array.length pa = Array.length pb
        && Array.for_all Fun.id
             (Array.init (Array.length pa) (fun i ->
                  (fst pa.(i)).Metrics.msgs_per_sec
                  = (fst pb.(i)).Metrics.msgs_per_sec
                  && (fst pa.(i)).Metrics.kbytes_per_sec
                     = (fst pb.(i)).Metrics.kbytes_per_sec)))
      s reference
  in
  Format.printf "  wire-mode figures %s the reference sweep@."
    (if identical then "are bitwise identical to" else "DIVERGE from");
  expect "wire mode is timing-neutral" identical
    "a wire-mode point differs from its reference point"

(* --- parallel: the conservative-lookahead simulator core ------------- *)

(* The fig6 sweep executed under the parallel core at a fixed worker
   count, so the points land in the JSON as their own targets. The
   simulated figures are bitwise-identical for every worker count >= 1;
   what changes between d1 and d8 is events_per_sec, which
   compare.exe --targets parallel-d8 --against parallel-d1
   --min-speedup R gates. *)
let parallel_d domains () =
  let s = sweep_cached ~sim_domains:domains ~num_nodes:4 () in
  Hashtbl.replace fig_results
    (Printf.sprintf "parallel-d%d" domains)
    (List.map (fun (name, _, pts) -> (name, pts)) s);
  Report.print_series
    ~title:
      (Printf.sprintf
         "Parallel core, %d domain%s: transmission rate (msgs/sec) vs \
          message length, 4 nodes"
         domains
         (if domains = 1 then "" else "s"))
    ~x_label:"bytes" ~xs:sizes (rate_series s);
  (match Hashtbl.find_opt cache (4, false, 1) with
  | Some d1 when domains <> 1 ->
    let identical =
      List.for_all2
        (fun (_, _, pa) (_, _, pb) ->
          Array.for_all Fun.id
            (Array.init (Array.length pa) (fun i ->
                 fst pa.(i) = fst pb.(i) && snd pa.(i) = snd pb.(i))))
        s d1
    in
    Format.printf "  figures and telemetry %s the 1-domain run@."
      (if identical then "are bitwise identical to" else "DIVERGE from");
    expect
      (Printf.sprintf "parallel core deterministic across 1 and %d domains"
         domains)
      identical "a point differs between worker counts"
  | _ -> ())

let parallel_d1 () = parallel_d 1 ()
let parallel_d8 () = parallel_d 8 ()

(* Determinism gate for `dune runtest` (bench-parallel-smoke): a quick
   fig6 slice — passive style, two sizes, byte-wire on — at sim-domains
   1 vs 4 must agree on every figure, the event count, and the protocol
   telemetry down to the problemCounter trajectory. Exits 1 on any
   divergence. *)
let parallel_smoke () =
  let point ~domains size =
    let config =
      Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive ~wire_bytes:true
        ~sim_domains:domains ~window_batch:!window_batch
        ~max_horizon_factor:!max_horizon_factor ()
    in
    let cluster = Cluster.create config in
    let sampler = Metrics.install_fault_sampler cluster ~interval:(Vtime.ms 50) in
    Cluster.start cluster;
    Workload.saturate cluster ~size;
    let tp =
      Metrics.measure_throughput cluster ~warmup:(Vtime.ms 100)
        ~duration:(Vtime.ms 200)
    in
    let pt = Metrics.collect_point_telemetry ~sampler cluster in
    let events = Metrics.events_processed cluster in
    note_cluster cluster;
    ( tp.Metrics.msgs_per_sec,
      tp.Metrics.kbytes_per_sec,
      events,
      pt.Metrics.pt_rotation_count,
      pt.Metrics.pt_retransmits_served,
      pt.Metrics.pt_token_retransmits,
      pt.Metrics.pt_duplicate_packets,
      pt.Metrics.pt_trajectory )
  in
  let diverged = ref false in
  List.iter
    (fun size ->
      let a = point ~domains:1 size and b = point ~domains:4 size in
      let ok = a = b in
      if not ok then diverged := true;
      let m, k, ev, _, _, _, _, _ = a in
      Format.printf "  %5dB: d1 %s d4  (%.0f msgs/sec, %.0f KB/sec, %d events)@."
        size
        (if ok then "==" else "DIVERGES FROM")
        m k ev)
    [ 700; 1024 ];
  if !diverged then begin
    Format.printf "  parallel core DIVERGED between sim-domains 1 and 4@.";
    exit 1
  end
  else Format.printf "  sim-domains 1 and 4 are bitwise identical@."

(* Window-batching gate for `dune runtest` (perf-smoke): a quick fig6
   slice at sim-domains 1 with batching on vs off must agree on every
   figure, the event count and the protocol telemetry, AND the batched
   run must actually engage — some barriers skipped, none skipped with
   batching off. Both checks are deterministic (no wall clock), so this
   cannot flake on a loaded CI host. Exits 1 on any breach. *)
let perf_smoke () =
  let point ~batch size =
    let config =
      Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive ~wire_bytes:true
        ~sim_domains:1 ~window_batch:batch
        ~max_horizon_factor:!max_horizon_factor ()
    in
    let cluster = Cluster.create config in
    let sampler = Metrics.install_fault_sampler cluster ~interval:(Vtime.ms 50) in
    Cluster.start cluster;
    Workload.saturate cluster ~size;
    let tp =
      Metrics.measure_throughput cluster ~warmup:(Vtime.ms 100)
        ~duration:(Vtime.ms 200)
    in
    let pt = Metrics.collect_point_telemetry ~sampler cluster in
    let events = Metrics.events_processed cluster in
    let st =
      Totem_engine.Exchange.stats (Option.get (Cluster.exchange cluster))
    in
    note_cluster cluster;
    let fingerprint =
      ( tp.Metrics.msgs_per_sec,
        tp.Metrics.kbytes_per_sec,
        events,
        pt.Metrics.pt_rotation_count,
        pt.Metrics.pt_retransmits_served,
        pt.Metrics.pt_token_retransmits,
        pt.Metrics.pt_duplicate_packets,
        pt.Metrics.pt_trajectory )
    in
    (fingerprint, st)
  in
  let failed = ref false in
  List.iter
    (fun size ->
      let fa, sa = point ~batch:true size in
      let fb, sb = point ~batch:false size in
      let ok = fa = fb in
      if not ok then failed := true;
      Format.printf
        "  %5dB: batched %s unbatched  (windows %d vs %d, skipped %d, widened \
         %d)@."
        size
        (if ok then "==" else "DIVERGES FROM")
        sa.Totem_engine.Exchange.windows_run
        sb.Totem_engine.Exchange.windows_run
        sa.Totem_engine.Exchange.windows_batched
        sa.Totem_engine.Exchange.windows_widened;
      if sa.Totem_engine.Exchange.windows_batched = 0 then begin
        Format.printf "  %5dB: batching never engaged (0 barriers skipped)@."
          size;
        failed := true
      end;
      if sb.Totem_engine.Exchange.windows_batched > 0 then begin
        Format.printf "  %5dB: batching disabled yet %d barriers skipped@." size
          sb.Totem_engine.Exchange.windows_batched;
        failed := true
      end)
    [ 700; 1024 ];
  if !failed then begin
    Format.printf "  window batching BREACHED the perf-smoke gate@.";
    exit 1
  end
  else
    Format.printf
      "  batching on/off bitwise identical; amortization engaged@."

(* Overhead gate for `dune runtest` (bench-gate): the parallel core at
   one domain, batching on, must hold >= 85% of the legacy
   single-simulator event rate over the fig6 sweep. Events/sec is
   wall-clock, so this is the one machine-sensitive gate; each side
   takes its fastest of five sweeps — the minimum wall time is the
   run least disturbed by the scheduler, which is the standard way to
   compare two deterministic workloads on a shared machine. *)
let bench_gate () =
  let best = [| 0.0; 0.0 |] in
  let best_wall = [| infinity; infinity |] in
  let timed side sd =
    let ev0 = Atomic.get events_total in
    let t0 = Unix.gettimeofday () in
    ignore (sweep ~sim_domains:sd ~num_nodes:4 ());
    let wall = Unix.gettimeofday () -. t0 in
    let rate = float_of_int (Atomic.get events_total - ev0) /. wall in
    if rate > best.(side) then begin
      best.(side) <- rate;
      best_wall.(side) <- wall
    end
  in
  (* Interleave the sides rather than timing one after the other: a
     sustained machine slowdown (another job landing mid-gate) then
     degrades both pools instead of silently taxing whichever side ran
     second, which is what turns a 0.89 margin into a spurious fail. *)
  for _ = 1 to 5 do
    timed 0 0;
    timed 1 1
  done;
  let legacy = best.(0) and lw = best_wall.(0) in
  let d1 = best.(1) and dw = best_wall.(1) in
  let ratio = d1 /. legacy in
  Format.printf
    "  legacy     %8.0fk events/sec  (%.2fs wall)@.  parallel-d1%8.0fk \
     events/sec  (%.2fs wall)@.  ratio %.3f (floor 0.85)@."
    (legacy /. 1e3) lw (d1 /. 1e3) dw ratio;
  if ratio < 0.85 then begin
    Format.printf "  parallel-d1 BELOW the 85%% overhead floor@.";
    exit 1
  end
  else Format.printf "  parallel-d1 within the overhead budget@."

(* --- soak: a long gray-failure campaign ----------------------------- *)

(* One long run through six operating phases — clean, sporadic bursty
   loss, full gray failure (heavy Gilbert–Elliott loss + latency
   inflation + directional loss on network 0), probation (the injected
   faults clear, the condemned network probes and reinstates), flap
   storm (oscillating loss that flap damping must absorb) and healed —
   with the condemned-network reinstatement protocol on throughout.

   Traffic is a fixed-rate stamped stream from every node, so each
   phase reports both delivered throughput and the delivery-latency
   distribution (p50/p99/p999) — the gray-failure phases should show
   masked throughput (the surviving network carries the ring) with a
   latency tail, not an outage. Every fault dimension draws on the
   coordinator's per-network simulation RNG, so the whole phase table
   is bitwise-identical for any sim-domains >= 1; the soak-smoke
   target gates d1 against d8 on exactly that. *)

type soak_phase = {
  sp_name : string;
  sp_msgs_per_sec : float;
  sp_count : int;  (** latency samples in the phase *)
  sp_p50 : float;
  sp_p90 : float;
  sp_p99 : float;
  sp_p999 : float;
  sp_net0 : string;  (** node 0's reinstatement state for net 0 at phase end *)
}

let soak_results : soak_phase list ref = ref []

let soak_run ?sim_domains:sd () =
  let sim_domains = Option.value sd ~default:!sim_domains in
  (* Soak-tuned reinstatement: shorter backoff and probation than the
     defaults so condemn -> probation -> reinstate -> re-condemn cycles
     fit inside bench-scale phases; the flap limit is raised so damping
     does not exhaust probes before the probation phase. *)
  let rrp =
    {
      Totem_rrp.Rrp_config.default with
      Totem_rrp.Rrp_config.reinstate = true;
      reinstate_backoff = Vtime.ms 250;
      reinstate_backoff_max = Vtime.sec 1;
      reinstate_clean_rotations = 10;
      reinstate_flap_limit = 6;
    }
  in
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive ~rrp
      ~wire_bytes:true ~sim_domains ~window_batch:!window_batch
      ~max_horizon_factor:!max_horizon_factor ()
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  for node = 0 to 3 do
    Workload.fixed_rate cluster ~node ~size:512 ~interval:(Vtime.ms 2) ()
  done;
  let phase_len = if !quick then Vtime.ms 800 else Vtime.sec 2 in
  let sim = Cluster.sim cluster in
  let clear_gray () =
    Cluster.set_network_burst_loss cluster 0 ~p_enter:0.0 ~p_exit:1.0;
    Cluster.set_network_delay cluster 0 ~factor:1.0 ~spike_prob:0.0;
    Cluster.set_network_dir_loss cluster 0 ~src:0 ~dst:1 0.0
  in
  let phases =
    [
      ("clean", fun () -> ());
      ( "bursty",
        fun () ->
          Cluster.set_network_burst_loss cluster 0 ~p_enter:0.05 ~p_exit:0.2 );
      ( "gray",
        fun () ->
          Cluster.set_network_burst_loss cluster 0 ~p_enter:0.3 ~p_exit:0.05;
          Cluster.set_network_delay cluster 0 ~factor:3.0 ~spike_prob:0.05;
          Cluster.set_network_dir_loss cluster 0 ~src:0 ~dst:1 0.5 );
      ("probation", clear_gray);
      ( "storm",
        fun () ->
          (* Oscillate within the phase: heavy burst for a third, clear
             for a third, heavy again — the reinstatement FSM sees the
             network flap and damping has to absorb it. *)
          let third = phase_len / 3 in
          Cluster.set_network_burst_loss cluster 0 ~p_enter:0.9 ~p_exit:0.05;
          ignore
            (Totem_engine.Sim.schedule sim ~delay:third (fun () ->
                 Cluster.set_network_burst_loss cluster 0 ~p_enter:0.0
                   ~p_exit:1.0));
          ignore
            (Totem_engine.Sim.schedule sim ~delay:(2 * third) (fun () ->
                 Cluster.set_network_burst_loss cluster 0 ~p_enter:0.9
                   ~p_exit:0.05)) );
      ( "healed",
        fun () ->
          clear_gray ();
          Cluster.heal_network cluster 0 );
    ]
  in
  let table =
    List.map
      (fun (name, setup) ->
        setup ();
        let probe = Metrics.install_latency cluster in
        let d0 = Cluster.delivered_at cluster 0 in
        Cluster.run_for cluster phase_len;
        let delivered = Cluster.delivered_at cluster 0 - d0 in
        let q p = Option.value ~default:nan (Metrics.latency_quantile probe p) in
        {
          sp_name = name;
          sp_msgs_per_sec =
            float_of_int delivered /. Vtime.to_float_sec phase_len;
          sp_count = Metrics.latency_count probe;
          sp_p50 = q 0.5;
          sp_p90 = q 0.9;
          sp_p99 = q 0.99;
          sp_p999 = q 0.999;
          sp_net0 =
            Totem_rrp.Rrp.net_state_string
              (Cluster.rrp (Cluster.node cluster 0))
              ~net:0;
        })
      phases
  in
  let events = Metrics.events_processed cluster in
  note_cluster cluster;
  (table, events)

let print_soak_table table =
  Format.printf
    "  %-10s %12s %8s %9s %9s %9s %9s  %s@." "phase" "msgs/sec" "n" "p50 ms"
    "p90 ms" "p99 ms" "p999 ms" "net0";
  List.iter
    (fun p ->
      Format.printf
        "  %-10s %12.0f %8d %9.3f %9.3f %9.3f %9.3f  %s@." p.sp_name
        p.sp_msgs_per_sec p.sp_count p.sp_p50 p.sp_p90 p.sp_p99 p.sp_p999
        p.sp_net0)
    table

let soak () =
  Format.printf
    "Gray-failure soak: 4 nodes, 2 nets, passive, wire bytes, \
     reinstatement on:@.";
  let table, _ = soak_run () in
  soak_results := table;
  print_soak_table table;
  let find name = List.find (fun p -> p.sp_name = name) table in
  expect "soak: gray phase is masked, not an outage"
    ((find "gray").sp_msgs_per_sec > 0.5 *. (find "clean").sp_msgs_per_sec)
    (Printf.sprintf "gray=%.0f clean=%.0f" (find "gray").sp_msgs_per_sec
       (find "clean").sp_msgs_per_sec);
  expect "soak: probation phase reinstated net 0"
    ((find "probation").sp_net0 = "active")
    (Printf.sprintf "net0=%s" (find "probation").sp_net0);
  expect "soak: every phase delivered"
    (List.for_all (fun p -> p.sp_count > 0) table)
    "a phase delivered no stamped messages"

(* Determinism gate for `dune runtest` (soak-smoke): the full soak phase
   table — throughput, latency quantiles, sample counts, reinstatement
   states and the event count — at sim-domains 1 vs 8 must be equal. *)
let soak_smoke () =
  let a = soak_run ~sim_domains:1 () in
  let b = soak_run ~sim_domains:8 () in
  print_soak_table (fst a);
  if a = b then Format.printf "  sim-domains 1 and 8 are bitwise identical@."
  else begin
    Format.printf "  soak DIVERGED between sim-domains 1 and 8@.";
    exit 1
  end

(* --- headline: Sec. 2's ">9,000 one-Kbyte msgs/sec, ~90%" --------- *)

let headline () =
  let tp, util, _ =
    run_point ~num_nodes:4 ~num_nets:2 ~style:Style.No_replication ~size:1024 ()
  in
  Format.printf "Headline (Sec. 2): unreplicated Totem, 4 nodes, 1 Kbyte messages:@.";
  Format.printf
    "  %.0f msgs/sec at %.0f%% Ethernet utilisation (paper: >9,000 at ~90%%)@."
    tp.Metrics.msgs_per_sec (util *. 100.0);
  expect "headline >9000 msgs/s"
    (tp.Metrics.msgs_per_sec > 8500.0)
    (Printf.sprintf "%.0f" tp.Metrics.msgs_per_sec);
  expect "headline ~90% utilisation" (util > 0.8 && util < 0.95)
    (Printf.sprintf "%.2f" util)

(* --- claims table: the numeric sentences of Sec. 8 ---------------- *)

let claims () =
  let s = sweep_cached ~num_nodes:4 () in
  let rates = rate_series s and bws = bw_series s in
  let at series name i = (List.assoc name series).(i) in
  Format.printf "Sec. 8 claim checks (4 nodes):@.";
  Format.printf "  %-10s %12s %12s %13s %12s %14s@." "size" "none msg/s"
    "active msg/s" "passive msg/s" "active gap" "passive +KB/s";
  Array.iteri
    (fun i size ->
      Format.printf "  %-10d %12.0f %12.0f %13.0f %12.0f %14.0f@." size
        (at rates "no repl" i) (at rates "active" i) (at rates "passive" i)
        (at rates "no repl" i -. at rates "active" i)
        (at bws "passive" i -. at bws "no repl" i))
    sizes

(* --- latency: delivery-latency distribution ------------------------ *)

(* A moderate fixed-rate stamped stream per node, so the probe sees
   steady-state ordering latency rather than saturation queueing. The
   full per-bucket histogram dump lands in the JSON, so baselines can be
   compared distribution to distribution, not just by quantile edges. *)
let latency_results : (string * Metrics.latency_probe) list ref = ref []

let latency () =
  let measure (name, style) =
    let config = Config.make ~num_nodes:4 ~num_nets:2 ~style () in
    let cluster = Cluster.create config in
    Cluster.start cluster;
    for node = 0 to 3 do
      Workload.fixed_rate cluster ~node ~size:1024 ~interval:(Vtime.ms 2) ()
    done;
    Cluster.run_for cluster (warmup ());
    let probe = Metrics.install_latency cluster in
    Cluster.run_for cluster (duration ());
    ignore (Atomic.fetch_and_add events_total (Metrics.events_processed cluster));
    (name, probe)
  in
  let results = parallel_map ~jobs:!jobs measure (Array.of_list styles) in
  latency_results := Array.to_list results;
  Format.printf
    "Delivery latency: 4 nodes, 2 nets, 1 Kbyte messages, 500 msgs/s/node:@.";
  Array.iter
    (fun (name, probe) ->
      match Metrics.latency_summary probe with
      | None -> Format.printf "  %-8s (no samples)@." name
      | Some s ->
        let q p = Option.value ~default:nan (Metrics.latency_quantile probe p) in
        Format.printf
          "  %-8s n=%6d  mean %6.3f ms   p50<=%.3f  p90<=%.3f  p99<=%.3f  \
           p999<=%.3f ms@."
          name (Stats.Summary.count s) (Stats.Summary.mean s) (q 0.5) (q 0.9)
          (q 0.99) (q 0.999))
    results;
  expect "latency: all styles deliver"
    (Array.for_all (fun (_, probe) -> Metrics.latency_count probe > 0) results)
    "a style delivered nothing"

(* --- ablations ----------------------------------------------------- *)

let ablation_passive_token_timer () =
  Format.printf
    "@.Ablation: passive token-buffer timeout under 10%% loss (P3 trade-off)@.";
  Format.printf "  (the paper chose 10 ms, Sec. 6)@.";
  let measure ms =
    let rrp =
      {
        Totem_rrp.Rrp_config.default with
        Totem_rrp.Rrp_config.passive_token_timeout = Vtime.ms ms;
      }
    in
    let config = Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive ~rrp () in
    let cluster = Cluster.create config in
    Cluster.start cluster;
    Cluster.set_network_loss cluster 0 0.1;
    Cluster.set_network_loss cluster 1 0.1;
    Workload.saturate cluster ~size:1024;
    let tp =
      Metrics.measure_throughput cluster ~warmup:(warmup ())
        ~duration:(duration ())
    in
    ignore (Atomic.fetch_and_add events_total (Metrics.events_processed cluster));
    tp
  in
  let timeouts = [| 1; 5; 10; 50; 100 |] in
  let tps = parallel_map ~jobs:!jobs measure timeouts in
  Array.iteri
    (fun i ms ->
      Format.printf "  timeout %3d ms: %8.0f msgs/sec@." ms
        tps.(i).Metrics.msgs_per_sec)
    timeouts

let detection_latency ~style ~threshold =
  let rrp =
    {
      Totem_rrp.Rrp_config.default with
      Totem_rrp.Rrp_config.active_problem_threshold = threshold;
      passive_monitor_threshold = threshold;
    }
  in
  let config = Config.make ~num_nodes:4 ~num_nets:2 ~style ~rrp () in
  let cluster = Cluster.create config in
  let detected = ref None in
  Cluster.on_fault_report cluster (fun _ _ ->
      if !detected = None then detected := Some (Cluster.now cluster));
  Cluster.start cluster;
  Workload.saturate cluster ~size:1024;
  Cluster.run_for cluster (Vtime.ms 300);
  let fail_at = Cluster.now cluster in
  Cluster.fail_network cluster 0;
  Cluster.run_for cluster (Vtime.sec 5);
  ignore (Atomic.fetch_and_add events_total (Metrics.events_processed cluster));
  Option.map (fun t -> Vtime.to_float_ms (Vtime.sub t fail_at)) !detected

let ablation_detection_threshold () =
  Format.printf "@.Ablation: fault-detection threshold vs detection latency (A5/P4)@.";
  let thresholds = [| 5; 10; 50; 200 |] in
  let results =
    parallel_map ~jobs:!jobs
      (fun threshold ->
        ( detection_latency ~style:Style.Active ~threshold,
          detection_latency ~style:Style.Passive ~threshold ))
      thresholds
  in
  Array.iteri
    (fun i threshold ->
      let a, p = results.(i) in
      let show = function
        | Some ms -> Printf.sprintf "%7.1f ms" ms
        | None -> "   (none)"
      in
      Format.printf "  threshold %4d: active %s   passive %s@." threshold (show a)
        (show p))
    thresholds

let ablation_active_passive_k () =
  Format.printf "@.Ablation: active-passive K on a 4-network fabric (Sec. 7)@.";
  let ks = [| 2; 3 |] in
  let tps =
    parallel_map ~jobs:!jobs
      (fun k ->
        tp_of_point
          (run_point ~num_nodes:4 ~num_nets:4 ~style:(Style.Active_passive k)
             ~size:1024 ()))
      ks
  in
  Array.iteri
    (fun i k -> Format.printf "  K=%d: %8.0f msgs/sec@." k tps.(i).Metrics.msgs_per_sec)
    ks;
  let tp_act =
    tp_of_point (run_point ~num_nodes:4 ~num_nets:4 ~style:Style.Active ~size:1024 ())
  in
  let tp_pas =
    tp_of_point (run_point ~num_nodes:4 ~num_nets:4 ~style:Style.Passive ~size:1024 ())
  in
  Format.printf "  (passive = K=1 limit: %.0f; active = K=4 limit: %.0f)@."
    tp_pas.Metrics.msgs_per_sec tp_act.Metrics.msgs_per_sec

let ablation_packing () =
  Format.printf "@.Ablation: message packing on/off (the 700-byte peak's cause)@.";
  let pack_sizes = [| 100; 400; 700 |] in
  let pairs =
    parallel_map ~jobs:!jobs
      (fun size ->
        let on, _, _ =
          run_point ~num_nodes:4 ~num_nets:2 ~style:Style.No_replication ~size ()
        in
        let const = { Const.default with Const.packing_enabled = false } in
        let off, _, _ =
          run_point ~const ~num_nodes:4 ~num_nets:2 ~style:Style.No_replication
            ~size ()
        in
        (on.Metrics.msgs_per_sec, off.Metrics.msgs_per_sec))
      pack_sizes
  in
  Array.iteri
    (fun i size ->
      let on, off = pairs.(i) in
      Format.printf
        "  %5d bytes: packed %8.0f msgs/sec   unpacked %8.0f msgs/sec (%.1fx)@."
        size on off (Report.ratio on off))
    pack_sizes;
  if !check then begin
    let on, off = pairs.(0) in
    expect "packing wins at small sizes" (on > 1.5 *. off)
      (Printf.sprintf "on=%.0f off=%.0f" on off)
  end

let ablation_window () =
  Format.printf "@.Ablation: flow-control window (packets per rotation)@.";
  let windows = [| 10; 25; 50; 100 |] in
  let tps =
    parallel_map ~jobs:!jobs
      (fun w ->
        let const = { Const.default with Const.window_size = w } in
        tp_of_point
          (run_point ~const ~num_nodes:4 ~num_nets:2 ~style:Style.No_replication
             ~size:1024 ()))
      windows
  in
  Array.iteri
    (fun i w ->
      Format.printf "  window %3d: %8.0f msgs/sec@." w tps.(i).Metrics.msgs_per_sec)
    windows

let ablations () =
  ablation_passive_token_timer ();
  ablation_detection_threshold ();
  ablation_active_passive_k ();
  ablation_packing ();
  ablation_window ()

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let micro () =
  let open Bechamel in
  let msgs =
    List.init 24 (fun i ->
        Totem_srp.Message.make ~origin:0 ~app_seq:i
          ~size:(100 + (i * 53 mod 1400))
          ())
  in
  let const = Const.default in
  let pack_test =
    Test.make ~name:"Packing.pack (24 mixed msgs)"
      (Staged.stage (fun () -> ignore (Totem_srp.Packing.pack const msgs)))
  in
  let store_test =
    Test.make ~name:"Recv_buffer 64x store+pop"
      (Staged.stage (fun () ->
           let b = Totem_srp.Recv_buffer.create () in
           for seq = 1 to 64 do
             ignore
               (Totem_srp.Recv_buffer.store b
                  { Totem_srp.Wire.ring_id = 1; seq; sender = 0; elements = [] })
           done;
           ignore (Totem_srp.Recv_buffer.pop_deliverable b)))
  in
  let queue_test =
    Test.make ~name:"Event_queue 256x push/pop"
      (Staged.stage (fun () ->
           let q = Totem_engine.Event_queue.create () in
           for i = 0 to 255 do
             ignore (Totem_engine.Event_queue.push q ~time:(i * 37 mod 101) i)
           done;
           while Totem_engine.Event_queue.pop q <> None do
             ()
           done))
  in
  let wheel_test =
    Test.make ~name:"Timer_wheel 256x arm/cancel"
      (Staged.stage (fun () ->
           let w = Totem_engine.Timer_wheel.create () in
           for i = 0 to 255 do
             let h =
               Totem_engine.Timer_wheel.push w ~time:((i * 37 mod 101) + 1) ~tie:i i
             in
             ignore (Totem_engine.Timer_wheel.cancel w h)
           done))
  in
  let rng_test =
    let rng = Totem_engine.Rng.create ~seed:1 in
    Test.make ~name:"Rng.int 256x"
      (Staged.stage (fun () ->
           for _ = 1 to 256 do
             ignore (Totem_engine.Rng.int rng 1000)
           done))
  in
  let merge_test =
    let a = List.init 100 (fun i -> 2 * i)
    and b = List.init 100 (fun i -> (2 * i) + 1) in
    Test.make ~name:"Retransmit.merge (100+100)"
      (Staged.stage (fun () -> ignore (Totem_srp.Retransmit.merge a b)))
  in
  Format.printf "@.Micro-benchmarks (Bechamel, ns per run):@.";
  (* 0.25 s x 6 tests: the same total quota budget as before the wheel
     micro-benchmark was added (5 x 0.3 s). *)
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg
          Toolkit.Instance.[ monotonic_clock ]
          (Test.make_grouped ~name:"g" [ test ])
      in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Format.printf "  %-34s %12.1f ns@." name est
          | _ -> Format.printf "  %-34s (no estimate)@." name)
        ols)
    [ pack_test; store_test; queue_test; wheel_test; rng_test; merge_test ]

(* --- JSON emission ------------------------------------------------- *)

type target_run = {
  tr_name : string;
  tr_wall_sec : float;
  tr_events : int;
  (* Gc.quick_stat deltas over the target: allocation pressure is a
     first-class regression axis (compare.exe --max-alloc-regression).
     Words are per-process; with --jobs > 1 worker-domain allocation is
     not counted, so alloc-gated baselines should be cut at --jobs 1. *)
  tr_minor_words : float;
  tr_major_words : float;
  tr_minor_collections : int;
  (* Exchange window counters summed over the target's partitioned
     clusters; all zero for legacy (sim-domains 0) targets. *)
  tr_windows_run : int;
  tr_windows_batched : int;
  tr_windows_widened : int;
}

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* NaN (empty histogram) becomes null; an overflow-bucket edge becomes
   the string "inf", matching the telemetry metrics exporter. *)
let json_num f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "\"inf\""
  else Printf.sprintf "%.6g" f

let quantile_of_dump dump total q =
  if total = 0 then nan
  else begin
    let target = q *. float_of_int total in
    let acc = ref 0 in
    let result = ref infinity in
    (try
       Array.iter
         (fun (le, n) ->
           acc := !acc + n;
           if float_of_int !acc >= target then begin
             result := le;
             raise Exit
           end)
         dump
     with Exit -> ());
    !result
  end

(* Collapse one style's per-size telemetry into a single block: rotation
   histograms merged bucket-wise, counters summed, and the
   problemCounter trajectory taken from the paper's headline 1024-byte
   point. *)
let merge_style_telemetry (pts : Metrics.point_telemetry array) =
  let merged = ref [||] in
  Array.iter
    (fun pt ->
      let d = pt.Metrics.pt_rotation_buckets in
      if Array.length !merged = 0 then merged := Array.copy d
      else
        Array.iteri
          (fun i (le, c) ->
            let _, c0 = !merged.(i) in
            !merged.(i) <- (le, c0 + c))
          d)
    pts;
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 !merged in
  let sum f = Array.fold_left (fun acc pt -> acc + f pt) 0 pts in
  let trajectory =
    let i = idx_of_size 1024 in
    if i >= 0 && i < Array.length pts then pts.(i).Metrics.pt_trajectory else []
  in
  {
    Metrics.pt_rotation_count = total;
    pt_rotation_p50 = quantile_of_dump !merged total 0.5;
    pt_rotation_p90 = quantile_of_dump !merged total 0.9;
    pt_rotation_p99 = quantile_of_dump !merged total 0.99;
    pt_rotation_buckets = !merged;
    pt_retransmits_served = sum (fun pt -> pt.Metrics.pt_retransmits_served);
    pt_retransmits_requested = sum (fun pt -> pt.Metrics.pt_retransmits_requested);
    pt_token_retransmits = sum (fun pt -> pt.Metrics.pt_token_retransmits);
    pt_duplicate_packets = sum (fun pt -> pt.Metrics.pt_duplicate_packets);
    pt_duplicate_tokens = sum (fun pt -> pt.Metrics.pt_duplicate_tokens);
    pt_trajectory = trajectory;
  }

let write_json path runs =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let emit_buckets label buckets =
    let non_empty =
      Array.to_list buckets |> List.filter (fun (_, c) -> c > 0)
    in
    pf "            \"%s\": [" label;
    List.iteri
      (fun i (le, c) ->
        pf "%s{\"le_ms\": %s, \"n\": %d}"
          (if i = 0 then "" else ", ")
          (json_num le) c)
      non_empty;
    pf "]"
  in
  let emit_telemetry (pt : Metrics.point_telemetry) =
    pf "          \"telemetry\": {\n";
    pf "            \"rotation_count\": %d,\n" pt.Metrics.pt_rotation_count;
    pf "            \"rotation_p50_ms\": %s,\n" (json_num pt.Metrics.pt_rotation_p50);
    pf "            \"rotation_p90_ms\": %s,\n" (json_num pt.Metrics.pt_rotation_p90);
    pf "            \"rotation_p99_ms\": %s,\n" (json_num pt.Metrics.pt_rotation_p99);
    emit_buckets "rotation_buckets" pt.Metrics.pt_rotation_buckets;
    pf ",\n";
    pf "            \"retransmits_served\": %d,\n" pt.Metrics.pt_retransmits_served;
    pf "            \"retransmits_requested\": %d,\n"
      pt.Metrics.pt_retransmits_requested;
    pf "            \"token_retransmits\": %d,\n" pt.Metrics.pt_token_retransmits;
    pf "            \"duplicate_packets\": %d,\n" pt.Metrics.pt_duplicate_packets;
    pf "            \"duplicate_tokens\": %d,\n" pt.Metrics.pt_duplicate_tokens;
    pf "            \"problem_trajectory\": [";
    List.iteri
      (fun i (t_ms, nets) ->
        pf "%s{\"t_ms\": %s, \"worst\": [%s]}"
          (if i = 0 then "" else ", ")
          (json_num t_ms)
          (String.concat ", "
             (Array.to_list (Array.map string_of_int nets))))
      pt.Metrics.pt_trajectory;
    pf "]\n";
    pf "          }"
  in
  pf "{\n";
  pf "  \"schema\": \"totem-bench/v1\",\n";
  pf "  \"quick\": %b,\n" !quick;
  pf "  \"jobs\": %d,\n" !jobs;
  pf "  \"sim_domains\": %d,\n" !sim_domains;
  pf "  \"targets\": [\n";
  let emit_target i t =
    let { tr_name; tr_wall_sec; tr_events; _ } = t in
    pf "    {\n";
    pf "      \"name\": \"%s\",\n" (json_escape tr_name);
    pf "      \"wall_clock_sec\": %.6f,\n" tr_wall_sec;
    pf "      \"sim_events\": %d,\n" tr_events;
    pf "      \"gc\": {\n";
    pf "        \"minor_words\": %.0f,\n" t.tr_minor_words;
    pf "        \"major_words\": %.0f,\n" t.tr_major_words;
    pf "        \"minor_collections\": %d,\n" t.tr_minor_collections;
    pf "        \"words_per_event\": %s\n"
      (json_num
         (if tr_events > 0 then
            (t.tr_minor_words +. t.tr_major_words) /. float_of_int tr_events
          else nan));
    pf "      },\n";
    if t.tr_windows_run > 0 then begin
      pf "      \"exchange\": {\n";
      pf "        \"windows_run\": %d,\n" t.tr_windows_run;
      pf "        \"windows_batched\": %d,\n" t.tr_windows_batched;
      pf "        \"windows_widened\": %d\n" t.tr_windows_widened;
      pf "      },\n"
    end;
    pf "      \"events_per_sec\": %.1f"
      (if tr_wall_sec > 0.0 then float_of_int tr_events /. tr_wall_sec else 0.0);
    (match Hashtbl.find_opt fig_results tr_name with
    | None -> ()
    | Some series ->
      pf ",\n      \"series\": [\n";
      List.iteri
        (fun si (style, pts) ->
          pf "        {\n          \"style\": \"%s\",\n          \"points\": [\n"
            (json_escape style);
          Array.iteri
            (fun pi ((p : Metrics.throughput), _) ->
              pf
                "            {\"bytes\": %d, \"msgs_per_sec\": %.2f, \
                 \"kbytes_per_sec\": %.2f}%s\n"
                sizes.(pi) p.Metrics.msgs_per_sec p.Metrics.kbytes_per_sec
                (if pi < Array.length pts - 1 then "," else ""))
            pts;
          pf "          ],\n";
          emit_telemetry (merge_style_telemetry (Array.map snd pts));
          pf "\n        }%s\n" (if si < List.length series - 1 then "," else ""))
        series;
      pf "      ]");
    if tr_name = "latency" && !latency_results <> [] then begin
      pf ",\n      \"latency\": [\n";
      let n = List.length !latency_results in
      List.iteri
        (fun i (style, probe) ->
          (* empty probes (n=0) emit explicit nulls, never nan *)
          let mean =
            match Metrics.latency_summary probe with
            | Some s -> json_num (Stats.Summary.mean s)
            | None -> "null"
          in
          let q p =
            match Metrics.latency_quantile probe p with
            | Some v -> json_num v
            | None -> "null"
          in
          pf "        {\n          \"style\": \"%s\",\n" (json_escape style);
          pf "          \"count\": %d,\n" (Metrics.latency_count probe);
          pf "          \"mean_ms\": %s,\n" mean;
          pf "          \"p50_ms\": %s,\n" (q 0.5);
          pf "          \"p90_ms\": %s,\n" (q 0.9);
          pf "          \"p99_ms\": %s,\n" (q 0.99);
          pf "          \"p999_ms\": %s,\n" (q 0.999);
          emit_buckets "histogram" (Metrics.latency_histogram_dump probe);
          pf "\n        }%s\n" (if i < n - 1 then "," else ""))
        !latency_results;
      pf "      ]"
    end;
    if tr_name = "soak" && !soak_results <> [] then begin
      pf ",\n      \"soak\": [\n";
      let n = List.length !soak_results in
      List.iteri
        (fun i p ->
          pf
            "        {\"phase\": \"%s\", \"msgs_per_sec\": %.2f, \"count\": \
             %d, \"p50_ms\": %s, \"p90_ms\": %s, \"p99_ms\": %s, \"p999_ms\": \
             %s, \"net0\": \"%s\"}%s\n"
            (json_escape p.sp_name) p.sp_msgs_per_sec p.sp_count
            (json_num p.sp_p50) (json_num p.sp_p90) (json_num p.sp_p99)
            (json_num p.sp_p999) (json_escape p.sp_net0)
            (if i < n - 1 then "," else ""))
        !soak_results;
      pf "      ]"
    end;
    pf "\n    }%s\n" (if i < List.length runs - 1 then "," else "")
  in
  List.iteri emit_target runs;
  pf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.(wrote %s)@." path

(* --- driver -------------------------------------------------------- *)

let all_targets =
  [
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("wire", wire);
    ("parallel-d1", parallel_d1);
    ("parallel-d8", parallel_d8);
    ("parallel-smoke", parallel_smoke);
    ("perf-smoke", perf_smoke);
    ("bench-gate", bench_gate);
    ("soak", soak);
    ("soak-smoke", soak_smoke);
    ("headline", headline);
    ("claims", claims);
    ("latency", latency);
    ("ablations", ablations);
    ("micro", micro);
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after ~prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix)

(* Every value-carrying option accepts both spellings — "--flag V" and
   "--flag=V" — through this one helper, so a new flag is a single
   table entry rather than two more match arms. Returns the remaining
   argv when [arg] was the option (consuming the value), None
   otherwise. *)
let consume_option ~name ~set arg rest =
  let prefix = name ^ "=" in
  if arg = name then
    match rest with
    | v :: rest ->
      set v;
      Some rest
    | [] -> failwith (name ^ " needs a value")
  else if starts_with ~prefix arg then begin
    set (after ~prefix arg);
    Some rest
  end
  else None

let value_options =
  [
    ("--jobs", fun v -> jobs := int_of_string v);
    ("--sim-domains", fun v -> sim_domains := int_of_string v);
    ("--window-batch", fun v -> window_batch := bool_of_string v);
    ("--max-horizon-factor", fun v -> max_horizon_factor := int_of_string v);
    ("--json", fun v -> json_path := Some v);
    ("--csv", fun v -> csv_dir := Some v);
  ]

let () =
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--check" :: rest ->
      check := true;
      parse rest
    | a :: rest -> (
      let consumed =
        List.find_map
          (fun (name, set) -> consume_option ~name ~set a rest)
          value_options
      in
      match consumed with
      | Some rest -> parse rest
      | None -> a :: parse rest)
  in
  let args = parse (List.tl (Array.to_list Sys.argv)) in
  if !jobs < 1 then failwith "--jobs must be >= 1";
  if !sim_domains < 0 then failwith "--sim-domains must be >= 0";
  if !max_horizon_factor < 1 then failwith "--max-horizon-factor must be >= 1";
  let targets =
    (* [all] excludes bench-gate: it is a pass/fail CI gate on a
       machine-sensitive wall-clock ratio, not a measurement — it would
       abort a baseline-JSON run on a noisy machine. Run it explicitly
       or via the `bench-gate` runtest alias. *)
    if args = [] || List.mem "all" args then
      List.filter (fun t -> t <> "bench-gate") (List.map fst all_targets)
    else args
  in
  let runs = ref [] in
  List.iter
    (fun t ->
      match List.assoc_opt t all_targets with
      | Some f ->
        Format.printf "@.=== %s ===@." t;
        let ev0 = Atomic.get events_total in
        let wr0 = Atomic.get windows_run_total in
        let wb0 = Atomic.get windows_batched_total in
        let ww0 = Atomic.get windows_widened_total in
        let g0 = Gc.quick_stat () in
        let t0 = Unix.gettimeofday () in
        f ();
        let wall_sec = Unix.gettimeofday () -. t0 in
        let g1 = Gc.quick_stat () in
        let events = Atomic.get events_total - ev0 in
        Report.print_sim_rate ~events ~wall_sec ();
        runs :=
          {
            tr_name = t;
            tr_wall_sec = wall_sec;
            tr_events = events;
            tr_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
            tr_major_words = g1.Gc.major_words -. g0.Gc.major_words;
            tr_minor_collections =
              g1.Gc.minor_collections - g0.Gc.minor_collections;
            tr_windows_run = Atomic.get windows_run_total - wr0;
            tr_windows_batched = Atomic.get windows_batched_total - wb0;
            tr_windows_widened = Atomic.get windows_widened_total - ww0;
          }
          :: !runs
      | None ->
        Format.printf "unknown target %s (known: %s)@." t
          (String.concat " " (List.map fst all_targets)))
    targets;
  (match !json_path with
  | Some path -> write_json path (List.rev !runs)
  | None -> ());
  if !check then
    if !failures = [] then Format.printf "@.All shape checks passed.@."
    else begin
      Format.printf "@.%d shape checks FAILED.@." (List.length !failures);
      exit 1
    end
