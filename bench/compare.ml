(* Regression gate over two BENCH_*.json baselines (totem-bench/v1).

   Usage:
     compare.exe [--max-regression PCT] [--targets a,b,...] OLD.json NEW.json

   Compares events_per_sec for every target present in both files
   (optionally restricted by --targets) and exits non-zero when any
   shared target regressed by more than the threshold (default 10%).
   Missing-in-new targets are reported but do not fail: baselines grow
   targets over time, and an old file must stay usable as the
   reference.

   Wired into `dune runtest` as the bench-diff smoke (current tree vs
   the committed previous-PR baseline, wire target only — the target
   with headroom measured in multiples, so machine noise cannot trip
   it). *)

module Json = Totem_chaos.Chaos_json

let usage () =
  prerr_endline
    "usage: compare.exe [--max-regression PCT] [--targets a,b,...] OLD.json \
     NEW.json";
  exit 2

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "compare: cannot open %s: %s\n" path msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* name -> events_per_sec for every target in a totem-bench/v1 file *)
let targets_of path =
  let doc =
    match Json.parse (read_file path) with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "compare: %s: %s\n" path msg;
      exit 2
  in
  (match Json.field doc "schema" with
  | Some (Json.Str "totem-bench/v1") -> ()
  | _ ->
    Printf.eprintf "compare: %s: not a totem-bench/v1 file\n" path;
    exit 2);
  match Json.field doc "targets" with
  | Some (Json.Arr targets) ->
    List.map
      (fun t ->
        (Json.get_str t "name" path, Json.get_num t "events_per_sec" path))
      targets
  | _ ->
    Printf.eprintf "compare: %s: missing targets array\n" path;
    exit 2

let () =
  let max_regression = ref 10.0 in
  let only = ref None in
  let files = ref [] in
  let rec parse_args = function
    | "--max-regression" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 -> max_regression := p
      | _ -> usage ());
      parse_args rest
    | "--targets" :: names :: rest ->
      only := Some (String.split_on_char ',' names);
      parse_args rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | file :: rest ->
      files := file :: !files;
      parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let old_targets = targets_of old_path and new_targets = targets_of new_path in
  let wanted name =
    match !only with None -> true | Some names -> List.mem name names
  in
  let failed = ref false in
  let compared = ref 0 in
  List.iter
    (fun (name, old_rate) ->
      if wanted name then
        match List.assoc_opt name new_targets with
        | None ->
          Printf.printf "%-12s missing from %s (skipped)\n" name new_path
        | Some new_rate ->
          incr compared;
          let delta_pct =
            if old_rate = 0.0 then 0.0
            else (new_rate -. old_rate) /. old_rate *. 100.0
          in
          let verdict =
            if delta_pct < -.(!max_regression) then begin
              failed := true;
              "REGRESSION"
            end
            else "ok"
          in
          Printf.printf "%-12s %12.1f -> %12.1f ev/s  %+7.1f%%  %s\n" name
            old_rate new_rate delta_pct verdict)
    old_targets;
  (match !only with
  | Some names ->
    List.iter
      (fun name ->
        if not (List.mem_assoc name old_targets) then begin
          Printf.eprintf "compare: target %s not in %s\n" name old_path;
          failed := true
        end)
      names
  | None -> ());
  if !compared = 0 then begin
    Printf.eprintf "compare: no shared targets between %s and %s\n" old_path
      new_path;
    exit 2
  end;
  if !failed then begin
    Printf.printf "FAIL: events/sec regression beyond %.1f%%\n" !max_regression;
    exit 1
  end
  else Printf.printf "PASS: %d target(s) within %.1f%%\n" !compared
         !max_regression
