(* Regression gate over two BENCH_*.json baselines (totem-bench/v1).

   Usage:
     compare.exe [--max-regression PCT] [--min-speedup R] [--against NAME]
                 [--targets a,b,...] [--max-latency-regression PCT]
                 [--max-alloc-regression PCT]
                 OLD.json NEW.json

   Default mode compares events_per_sec for every target present in
   both files (optionally restricted by --targets) and exits non-zero
   when any shared target regressed by more than the threshold
   (default 10%). Missing-in-new targets are reported but do not fail:
   baselines grow targets over time, and an old file must stay usable
   as the reference.

   --against NAME swaps the reference: every selected target of
   NEW.json is compared against the single target NAME of OLD.json.
   With --min-speedup R the gate becomes a ratio floor — every
   comparison must show new/old >= R, e.g.

     compare.exe --targets parallel-d8 --against parallel-d1 \
       --min-speedup 4 BENCH.json BENCH.json

   gates the parallel simulator core's scaling inside one baseline.

   --max-latency-regression PCT additionally diffs the per-style
   delivery-latency quantiles (p50/p90/p99/p999 ms) of the "latency"
   target and fails if any shared quantile grew by more than PCT.
   Latency quantiles are measured in virtual time, so they are
   deterministic across machines — unlike events_per_sec, a tight
   threshold cannot be tripped by load noise. Quantiles null or missing
   on either side (older baselines lack p999_ms) are skipped.

   --max-alloc-regression PCT diffs each shared target's
   gc.words_per_event and fails if it grew by more than PCT. Allocated
   words per simulated event is a counter, not a timing, so like the
   latency quantiles it is immune to machine noise — it catches a hot
   path that started allocating. Targets without a gc block on either
   side (baselines predating the block) are skipped.

   Wired into `dune runtest` as the bench-diff smoke (current tree vs
   the committed previous-PR baseline, wire target only — the target
   with headroom measured in multiples, so machine noise cannot trip
   it — plus the deterministic latency-quantile gate). *)

module Json = Totem_chaos.Chaos_json

let usage () =
  prerr_endline
    "usage: compare.exe [--max-regression PCT] [--min-speedup R] [--against \
     NAME] [--targets a,b,...] [--max-latency-regression PCT] \
     [--max-alloc-regression PCT] OLD.json NEW.json";
  exit 2

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "compare: cannot open %s: %s\n" path msg;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* name -> events_per_sec for every target in a totem-bench/v1 file *)
let targets_of path =
  let doc =
    match Json.parse (read_file path) with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "compare: %s: %s\n" path msg;
      exit 2
  in
  (match Json.field doc "schema" with
  | Some (Json.Str "totem-bench/v1") -> ()
  | _ ->
    Printf.eprintf "compare: %s: not a totem-bench/v1 file\n" path;
    exit 2);
  match Json.field doc "targets" with
  | Some (Json.Arr targets) ->
    List.map
      (fun t ->
        (Json.get_str t "name" path, Json.get_num t "events_per_sec" path))
      targets
  | _ ->
    Printf.eprintf "compare: %s: missing targets array\n" path;
    exit 2

(* style -> (quantile name, value in ms) list from the "latency" target.
   Only numeric quantiles count: null (empty probe), "inf" (histogram
   overflow) and absent keys (older baselines lack p999_ms) are
   skipped, so old files stay usable as references. *)
let quantile_names = [ "p50_ms"; "p90_ms"; "p99_ms"; "p999_ms" ]

let latency_of path =
  let doc =
    match Json.parse (read_file path) with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "compare: %s: %s\n" path msg;
      exit 2
  in
  match Json.field doc "targets" with
  | Some (Json.Arr targets) -> (
    let is_latency t = Json.field t "name" = Some (Json.Str "latency") in
    match List.find_opt is_latency targets with
    | None -> []
    | Some t -> (
      match Json.field t "latency" with
      | Some (Json.Arr styles) ->
        List.map
          (fun s ->
            let style = Json.get_str s "style" path in
            let quantiles =
              List.filter_map
                (fun name ->
                  match Json.field s name with
                  | Some (Json.Num v) -> Some (name, v)
                  | _ -> None)
                quantile_names
            in
            (style, quantiles))
          styles
      | _ -> []))
  | _ -> []

(* name -> gc.words_per_event for every target carrying a gc block.
   Targets without one (baselines predating the block) or with a
   non-numeric value (zero-event targets serialize null) are absent, so
   old files stay usable as references. *)
let alloc_of path =
  let doc =
    match Json.parse (read_file path) with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "compare: %s: %s\n" path msg;
      exit 2
  in
  match Json.field doc "targets" with
  | Some (Json.Arr targets) ->
    List.filter_map
      (fun t ->
        match Json.field t "gc" with
        | Some gc -> (
          match Json.field gc "words_per_event" with
          | Some (Json.Num v) -> Some (Json.get_str t "name" path, v)
          | _ -> None)
        | None -> None)
      targets
  | _ -> []

let () =
  let max_regression = ref 10.0 in
  let min_speedup = ref None in
  let against = ref None in
  let only = ref None in
  let max_latency_regression = ref None in
  let max_alloc_regression = ref None in
  let files = ref [] in
  let rec parse_args = function
    | "--max-regression" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 -> max_regression := p
      | _ -> usage ());
      parse_args rest
    | "--max-latency-regression" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 -> max_latency_regression := Some p
      | _ -> usage ());
      parse_args rest
    | "--max-alloc-regression" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 -> max_alloc_regression := Some p
      | _ -> usage ());
      parse_args rest
    | "--min-speedup" :: r :: rest ->
      (match float_of_string_opt r with
      | Some r when r > 0.0 -> min_speedup := Some r
      | _ -> usage ());
      parse_args rest
    | "--against" :: name :: rest ->
      against := Some name;
      parse_args rest
    | "--targets" :: names :: rest ->
      only := Some (String.split_on_char ',' names);
      parse_args rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | file :: rest ->
      files := file :: !files;
      parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let old_targets = targets_of old_path and new_targets = targets_of new_path in
  let wanted name =
    match !only with None -> true | Some names -> List.mem name names
  in
  let failed = ref false in
  (* (label, reference rate, new rate) for every comparison to run *)
  let pairs =
    match !against with
    | None ->
      List.filter_map
        (fun (name, old_rate) ->
          if not (wanted name) then None
          else
            match List.assoc_opt name new_targets with
            | None ->
              Printf.printf "%-12s missing from %s (skipped)\n" name new_path;
              None
            | Some new_rate -> Some (name, old_rate, new_rate))
        old_targets
    | Some ref_name ->
      let ref_rate =
        match List.assoc_opt ref_name old_targets with
        | Some r -> r
        | None ->
          Printf.eprintf "compare: target %s not in %s\n" ref_name old_path;
          exit 2
      in
      List.filter_map
        (fun (name, new_rate) ->
          if wanted name && name <> ref_name then
            Some (Printf.sprintf "%s vs %s" name ref_name, ref_rate, new_rate)
          else None)
        new_targets
  in
  List.iter
    (fun (label, old_rate, new_rate) ->
      match !min_speedup with
      | Some need ->
        let speedup =
          if old_rate = 0.0 then Float.infinity else new_rate /. old_rate
        in
        let verdict =
          if speedup < need then begin
            failed := true;
            "BELOW FLOOR"
          end
          else "ok"
        in
        Printf.printf "%-24s %12.1f -> %12.1f ev/s  %6.2fx (need %.2fx)  %s\n"
          label old_rate new_rate speedup need verdict
      | None ->
        let delta_pct =
          if old_rate = 0.0 then 0.0
          else (new_rate -. old_rate) /. old_rate *. 100.0
        in
        let verdict =
          if delta_pct < -.(!max_regression) then begin
            failed := true;
            "REGRESSION"
          end
          else "ok"
        in
        Printf.printf "%-24s %12.1f -> %12.1f ev/s  %+7.1f%%  %s\n" label
          old_rate new_rate delta_pct verdict)
    pairs;
  (match (!only, !against) with
  | Some names, None ->
    List.iter
      (fun name ->
        if not (List.mem_assoc name old_targets) then begin
          Printf.eprintf "compare: target %s not in %s\n" name old_path;
          failed := true
        end)
      names
  | Some names, Some _ ->
    List.iter
      (fun name ->
        if not (List.mem_assoc name new_targets) then begin
          Printf.eprintf "compare: target %s not in %s\n" name new_path;
          failed := true
        end)
      names
  | None, _ -> ());
  (match !max_latency_regression with
  | None -> ()
  | Some pct ->
    let old_lat = latency_of old_path and new_lat = latency_of new_path in
    let compared = ref 0 in
    List.iter
      (fun (style, old_qs) ->
        match List.assoc_opt style new_lat with
        | None ->
          Printf.printf "latency %-16s missing from %s (skipped)\n" style
            new_path
        | Some new_qs ->
          List.iter
            (fun (qname, old_ms) ->
              match List.assoc_opt qname new_qs with
              | None -> ()
              | Some new_ms ->
                incr compared;
                let delta_pct =
                  if old_ms = 0.0 then 0.0
                  else (new_ms -. old_ms) /. old_ms *. 100.0
                in
                let verdict =
                  if delta_pct > pct then begin
                    failed := true;
                    "REGRESSION"
                  end
                  else "ok"
                in
                Printf.printf
                  "latency %-10s %-8s %10.3f -> %10.3f ms  %+7.1f%%  %s\n"
                  style qname old_ms new_ms delta_pct verdict)
            old_qs)
      old_lat;
    if !compared = 0 then begin
      Printf.eprintf
        "compare: --max-latency-regression: no shared latency quantiles \
         between %s and %s\n"
        old_path new_path;
      failed := true
    end);
  (match !max_alloc_regression with
  | None -> ()
  | Some pct ->
    let old_alloc = alloc_of old_path and new_alloc = alloc_of new_path in
    let compared = ref 0 in
    List.iter
      (fun (name, old_wpe) ->
        if wanted name then
          match List.assoc_opt name new_alloc with
          | None ->
            Printf.printf "alloc   %-16s missing gc block in %s (skipped)\n"
              name new_path
          | Some new_wpe ->
            incr compared;
            let delta_pct =
              if old_wpe = 0.0 then 0.0
              else (new_wpe -. old_wpe) /. old_wpe *. 100.0
            in
            let verdict =
              if delta_pct > pct then begin
                failed := true;
                "REGRESSION"
              end
              else "ok"
            in
            Printf.printf
              "alloc   %-16s %10.1f -> %10.1f words/event  %+7.1f%%  %s\n" name
              old_wpe new_wpe delta_pct verdict)
      old_alloc;
    if !compared = 0 then begin
      Printf.eprintf
        "compare: --max-alloc-regression: no shared gc blocks between %s and \
         %s\n"
        old_path new_path;
      failed := true
    end);
  if pairs = [] then begin
    Printf.eprintf "compare: no shared targets between %s and %s\n" old_path
      new_path;
    exit 2
  end;
  if !failed then begin
    (match !min_speedup with
    | Some r -> Printf.printf "FAIL: events/sec speedup below %.2fx\n" r
    | None ->
      Printf.printf
        "FAIL: regression beyond threshold (events/sec %.1f%%%s%s)\n"
        !max_regression
        (match !max_latency_regression with
        | Some p -> Printf.sprintf ", latency %.1f%%" p
        | None -> "")
        (match !max_alloc_regression with
        | Some p -> Printf.sprintf ", alloc %.1f%%" p
        | None -> ""));
    exit 1
  end
  else
    match !min_speedup with
    | Some r ->
      Printf.printf "PASS: %d comparison(s) at or above %.2fx\n"
        (List.length pairs) r
    | None ->
      Printf.printf "PASS: %d target(s) within %.1f%%\n" (List.length pairs)
        !max_regression
